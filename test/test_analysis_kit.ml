(* The analysis kit shared by wfs_lint and wfs_analyze: diagnostic sink
   ordering (the byte-identical report contract), the suppression
   parser's targeting/hygiene rules, and the SARIF emitter.  The sink
   property is the one satellite guarantee everything else leans on —
   the published diagnostic stream must not depend on traversal order. *)

module Diag = Analysis_kit.Diag
module Suppress = Analysis_kit.Suppress
module Sarif = Analysis_kit.Sarif

let r1 = { Diag.id = "R1"; title = "rule one" }
let r2 = { Diag.id = "R2"; title = "rule two" }
let hygiene = { Diag.id = "R9"; title = "suppression hygiene" }

let rule_of_id = function
  | "R1" -> Some r1
  | "R2" -> Some r2
  | "R9" -> Some hygiene
  | _ -> None

let render diags = String.concat "\n" (List.map Diag.to_string diags)

let contents_of reports =
  let sink = Diag.sink () in
  List.iter (Diag.report sink) reports;
  Diag.contents sink

(* --- sink ordering ------------------------------------------------- *)

let diag_gen =
  QCheck.Gen.(
    let* file = oneofl [ "a.ml"; "b.ml"; "lib/c.ml" ] in
    let* line = 1 -- 20 in
    let* col = 0 -- 10 in
    let* rule = oneofl [ r1; r2 ] in
    let* message = oneofl [ "first message"; "second message" ] in
    return (Diag.make ~file ~line ~col ~rule message))

let arb_diags =
  QCheck.make
    ~print:(fun ds -> render ds)
    QCheck.Gen.(list_size (0 -- 25) diag_gen)

let prop_order_invariant =
  QCheck.Test.make ~name:"sink output is independent of report order"
    ~count:300 arb_diags (fun diags ->
      let baseline = render (contents_of diags) in
      let reversed = render (contents_of (List.rev diags)) in
      let rotated =
        match diags with
        | [] -> []
        | d :: rest -> rest @ [ d ]
      in
      String.equal baseline reversed
      && String.equal baseline (render (contents_of rotated)))

let prop_sorted_and_site_deduped =
  QCheck.Test.make ~name:"sink output is sorted and site-deduplicated"
    ~count:300 arb_diags (fun diags ->
      let out = contents_of diags in
      let rec pairwise = function
        | a :: (b :: _ as rest) ->
            Diag.compare_diag a b <= 0
            && Diag.compare_site a b <> 0
            && pairwise rest
        | _ -> true
      in
      pairwise out)

let test_dedup_same_site () =
  let d msg = Diag.make ~file:"x.ml" ~line:3 ~col:1 ~rule:r1 msg in
  let out = contents_of [ d "alpha"; d "beta"; d "alpha" ] in
  Alcotest.(check int) "one survivor per site" 1 (List.length out);
  let other = Diag.make ~file:"x.ml" ~line:3 ~col:1 ~rule:r2 "gamma" in
  let out2 = contents_of [ d "alpha"; other ] in
  Alcotest.(check int) "distinct rules at a site both survive" 2
    (List.length out2)

let test_files_sorted_uniq () =
  let d file = Diag.make ~file ~line:1 ~col:0 ~rule:r1 "m" in
  Alcotest.(check (list string))
    "files are sorted and unique" [ "a.ml"; "b.ml" ]
    (Diag.files [ d "b.ml"; d "a.ml"; d "b.ml" ])

(* --- suppressions -------------------------------------------------- *)

let marker = "lint: allow"

let scan source =
  Suppress.scan ~marker ~hygiene ~rule_of_id ~file:"f.ml" source

let diag_at ?(rule = r1) line =
  Diag.make ~file:"f.ml" ~line ~col:4 ~rule "whatever"

let test_trailing_covers_own_line () =
  let t = scan "let x = f () (* lint: allow R1 -- sentinel compare *)" in
  Alcotest.(check bool) "covers its own line" true (Suppress.covers t (diag_at 1));
  Alcotest.(check int) "no leftovers once used" 0
    (List.length (Suppress.leftovers ~file:"f.ml" t))

let test_standalone_covers_next_line () =
  let t = scan "(* lint: allow R1 -- sentinel compare *)\nlet x = f ()" in
  Alcotest.(check bool) "does not cover the comment line" false
    (Suppress.covers t (diag_at 1));
  Alcotest.(check bool) "covers the next line" true
    (Suppress.covers t (diag_at 2))

let test_rule_must_match () =
  let t = scan "let x = f () (* lint: allow R1 -- sentinel compare *)" in
  Alcotest.(check bool) "R2 diagnostic is not silenced by an R1 entry" false
    (Suppress.covers t (diag_at ~rule:r2 1))

let test_markers_do_not_cross_match () =
  (* Assembled at runtime: a literal analyze-marker here would itself be
     picked up by wfs_analyze's textual scan of this very file. *)
  let foreign = "analyze" ^ ": allow" in
  let t = scan ("let x = f () (* " ^ foreign ^ " A1 -- other tool's marker *)") in
  Alcotest.(check int) "foreign marker parses to nothing" 0
    (List.length (Suppress.leftovers ~file:"f.ml" t));
  Alcotest.(check bool) "and covers nothing" false (Suppress.covers t (diag_at 1))

let leftover_messages t =
  List.map (fun d -> d.Diag.message) (Suppress.leftovers ~file:"f.ml" t)

let test_malformed_rule_token () =
  let t = scan "let x = f () (* lint: allow R7 -- unknown rule token *)" in
  match leftover_messages t with
  | [ m ] ->
      Alcotest.(check bool) "reported as malformed" true
        (String.length m >= 9 && String.sub m 0 9 = "malformed")
  | ms -> Alcotest.failf "expected one malformed leftover, got %d" (List.length ms)

let test_short_justification () =
  let t = scan "let x = f () (* lint: allow R1 -- why *)" in
  Alcotest.(check bool) "short justification never covers" false
    (Suppress.covers t (diag_at 1));
  Alcotest.(check int) "and is itself a diagnostic" 1
    (List.length (Suppress.leftovers ~file:"f.ml" t))

let test_hygiene_not_suppressible () =
  let t = scan "let x = f () (* lint: allow R9 -- silencing the auditor *)" in
  Alcotest.(check bool) "hygiene rule cannot be suppressed" false
    (Suppress.covers t (diag_at ~rule:hygiene 1));
  Alcotest.(check int) "the attempt is flagged" 1
    (List.length (Suppress.leftovers ~file:"f.ml" t))

let test_stale_entry () =
  let t = scan "let x = f () (* lint: allow R1 -- nothing fires here *)" in
  match Suppress.leftovers ~file:"f.ml" t with
  | [ d ] ->
      Alcotest.(check string) "stale report lands on the comment line" "f.ml"
        d.Diag.file;
      Alcotest.(check int) "at its line" 1 d.Diag.line;
      Alcotest.(check string) "under the hygiene rule" "R9" d.Diag.rule.Diag.id
  | ds -> Alcotest.failf "expected one stale leftover, got %d" (List.length ds)

(* --- SARIF --------------------------------------------------------- *)

let sarif_of diags =
  Sarif.to_string ~tool:"kit_test" ~version:"0.0.1" ~info_uri:"docs/ANALYSIS.md"
    ~rules:[ r1; r2 ] diags

let json_get path json =
  List.fold_left
    (fun acc key ->
      match acc with
      | Some j -> (
          match int_of_string_opt key with
          | Some i -> (
              match Wfs_util.Json.to_list j with
              | Some l -> List.nth_opt l i
              | None -> None)
          | None -> Wfs_util.Json.member key j)
      | None -> None)
    (Some json) path

let test_sarif_parses () =
  let tricky = "needs \"escaping\"\nand\ttabs" in
  let diags =
    [
      Diag.make ~file:"lib/u.ml" ~line:7 ~col:2 ~rule:r1 tricky;
      Diag.make ~file:"lib/v.ml" ~line:1 ~col:0 ~rule:r2 "plain";
    ]
  in
  match Wfs_util.Json.of_string (sarif_of diags) with
  | Error e -> Alcotest.failf "SARIF does not parse: %s" e
  | Ok json ->
      let str path =
        match json_get path json with
        | Some j -> Option.value ~default:"<not a string>" (Wfs_util.Json.to_str j)
        | None -> "<missing>"
      in
      Alcotest.(check string) "version" "2.1.0" (str [ "version" ]);
      Alcotest.(check string) "tool name" "kit_test"
        (str [ "runs"; "0"; "tool"; "driver"; "name" ]);
      Alcotest.(check string) "rule id" "R1"
        (str [ "runs"; "0"; "tool"; "driver"; "rules"; "0"; "id" ]);
      Alcotest.(check string) "message text round-trips escapes" tricky
        (str [ "runs"; "0"; "results"; "0"; "message"; "text" ]);
      Alcotest.(check string) "result rule id" "R1"
        (str [ "runs"; "0"; "results"; "0"; "ruleId" ]);
      let col =
        match
          json_get
            [
              "runs"; "0"; "results"; "0"; "locations"; "0"; "physicalLocation";
              "region"; "startColumn";
            ]
            json
        with
        | Some j -> Option.value ~default:(-1) (Wfs_util.Json.to_int j)
        | None -> -1
      in
      Alcotest.(check int) "SARIF columns are 1-based" 3 col

let prop_sarif_always_parses =
  QCheck.Test.make ~name:"SARIF output parses for arbitrary diagnostics"
    ~count:100 arb_diags (fun diags ->
      match Wfs_util.Json.of_string (sarif_of (contents_of diags)) with
      | Ok _ -> true
      | Error _ -> false)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_order_invariant;
    QCheck_alcotest.to_alcotest prop_sorted_and_site_deduped;
    Alcotest.test_case "same-site dedup" `Quick test_dedup_same_site;
    Alcotest.test_case "files helper" `Quick test_files_sorted_uniq;
    Alcotest.test_case "trailing suppression" `Quick test_trailing_covers_own_line;
    Alcotest.test_case "standalone suppression" `Quick
      test_standalone_covers_next_line;
    Alcotest.test_case "rule match required" `Quick test_rule_must_match;
    Alcotest.test_case "markers are disjoint" `Quick
      test_markers_do_not_cross_match;
    Alcotest.test_case "malformed rule token" `Quick test_malformed_rule_token;
    Alcotest.test_case "short justification" `Quick test_short_justification;
    Alcotest.test_case "hygiene unsuppressible" `Quick
      test_hygiene_not_suppressible;
    Alcotest.test_case "stale suppression" `Quick test_stale_entry;
    Alcotest.test_case "SARIF structure" `Quick test_sarif_parses;
    QCheck_alcotest.to_alcotest prop_sarif_always_parses;
  ]
