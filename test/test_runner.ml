(* The parallel experiment engine: pool determinism, spec round-trips, the
   JSON artifact, and the scheduler registries. *)

module Core = Wfs_core
module Spec = Wfs_runner.Spec
module Exec = Wfs_runner.Exec
module Pool = Wfs_runner.Pool
module Json = Wfs_runner.Json
module Artifact = Wfs_runner.Artifact

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* --- Pool --- *)

let test_pool_matches_sequential () =
  (* Deliberately uneven work per item: late items finish first under
     parallel execution, so any completion-order dependence would show. *)
  let f i =
    let acc = ref 0 in
    for k = 0 to (100 - i) * 500 do
      acc := (!acc + (k * i)) mod 9973
    done;
    (i, !acc)
  in
  let items = Array.init 100 (fun i -> i) in
  let seq = Array.map f items in
  List.iter
    (fun jobs ->
      check_bool
        (Printf.sprintf "jobs=%d matches sequential" jobs)
        true
        (Pool.map ~jobs f items = seq))
    [ 1; 2; 4; 7 ]

let test_pool_empty_and_oversized () =
  check_int "empty input" 0 (Array.length (Pool.map ~jobs:4 (fun x -> x) [||]));
  (* More workers than items must still produce every result. *)
  let r = Pool.map ~jobs:16 (fun i -> i * i) (Array.init 3 (fun i -> i)) in
  check_bool "3 items under 16 jobs" true (r = [| 0; 1; 4 |])

exception Boom of int

let test_pool_propagates_errors () =
  let f i = if i = 5 then raise (Boom i) else i in
  (match Pool.map ~jobs:3 f (Array.init 10 (fun i -> i)) with
  | _ -> Alcotest.fail "expected Boom to escape"
  | exception Boom 5 -> ());
  (* Sequential path raises too. *)
  match Pool.map ~jobs:1 f (Array.init 10 (fun i -> i)) with
  | _ -> Alcotest.fail "expected Boom to escape (jobs=1)"
  | exception Boom 5 -> ()

(* --- Exec determinism --- *)

let fingerprint (m : Core.Metrics.t) =
  List.init (Core.Metrics.n_flows m) (fun flow ->
      ( Core.Metrics.mean_delay m ~flow,
        Core.Metrics.loss m ~flow,
        Core.Metrics.max_delay m ~flow ))

let small_specs () =
  Array.of_list
    (List.map
       (fun sched -> Spec.make ~seed:7 ~horizon:3_000 ~sched (Spec.example ~sum:0.1 1))
       [ "WRR-P"; "SwapA-P"; "IWFQ-P"; "Blind WRR"; "CIF-Q-P"; "CSDPS" ])

let test_exec_jobs_invariant () =
  let specs = small_specs () in
  let runs jobs = Array.map fingerprint (Exec.run_all ~jobs specs) in
  let seq = runs 1 in
  check_bool "jobs=2 identical to jobs=1" true (runs 2 = seq);
  check_bool "jobs=4 identical to jobs=1" true (runs 4 = seq)

let test_exec_order_invariant () =
  (* Each run splits its RNG streams from its own spec seed, so results do
     not depend on what ran before them or on which domain they landed. *)
  let specs = small_specs () in
  let n = Array.length specs in
  let rev = Array.init n (fun i -> specs.(n - 1 - i)) in
  let fwd = Array.map fingerprint (Exec.run_all ~jobs:2 specs) in
  let bwd = Array.map fingerprint (Exec.run_all ~jobs:2 rev) in
  Array.iteri
    (fun i fp -> check_bool "same result in reversed order" true (fp = bwd.(n - 1 - i)))
    fwd

let test_exec_replicate () =
  let spec = Spec.make ~seed:3 ~horizon:2_000 ~sched:"SwapA-P" (Spec.example 1) in
  let reps = Exec.replicate ~jobs:2 ~seeds:3 spec in
  check_int "three replicas" 3 (Array.length reps);
  Array.iteri
    (fun k m ->
      let solo = Exec.run (Spec.with_seed (3 + k) spec) in
      check_bool
        (Printf.sprintf "replica %d = standalone seed %d" k (3 + k))
        true
        (fingerprint m = fingerprint solo))
    reps;
  let s = Exec.summarize (fun m -> Core.Metrics.mean_delay m ~flow:0) reps in
  check_int "summary over 3" 3 (Wfs_util.Stats.Summary.count s)

(* --- checkpoint/resume --- *)

let test_journal_truncate_resume () =
  (* Full sweep journaling every result; truncate the journal after N
     entries (a killed run); resume from it.  The merged, rendered output
     must be byte-identical to the uninterrupted sweep. *)
  let specs =
    List.map
      (fun sched -> Spec.make ~seed:13 ~horizon:2_000 ~sched (Spec.example 1))
      [ "WRR-P"; "SwapA-P"; "IWFQ-P"; "CIF-Q-P"; "CSDPS" ]
  in
  let render sp m =
    Spec.to_string sp ^ " => "
    ^ Wfs_util.Json.to_string ~pretty:false (Core.Metrics.to_json m)
  in
  let uninterrupted = List.map (fun sp -> render sp (Exec.run sp)) specs in
  let path = Filename.temp_file "wfs_resume" ".journal" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let params = [ ("horizon", Wfs_util.Json.Int 2_000) ] in
      let w = Wfs_runner.Journal.create ~path ~params () in
      List.iter
        (fun sp ->
          Wfs_runner.Journal.append w ~key:(Spec.to_string sp)
            ~value:(Core.Metrics.to_json (Exec.run sp)))
        specs;
      Wfs_runner.Journal.close w;
      (* Kill the sweep after N = 3 completed entries: keep the header line
         plus the first three entry lines. *)
      let lines =
        let ic = open_in path in
        let rec go acc =
          match input_line ic with
          | line -> go (line :: acc)
          | exception End_of_file ->
              close_in ic;
              List.rev acc
        in
        go []
      in
      let keep = List.filteri (fun i _ -> i < 4) lines in
      let oc = open_out path in
      List.iter (fun l -> output_string oc (l ^ "\n")) keep;
      close_out oc;
      match Wfs_runner.Journal.load ~path () with
      | Error e ->
          Alcotest.failf "truncated journal must load: %s"
            (Wfs_util.Error.to_string e)
      | Ok { entries; _ } ->
          check_int "three entries survive the kill" 3 (List.length entries);
          let cached = Hashtbl.create 8 in
          List.iter (fun (k, v) -> Hashtbl.replace cached k v) entries;
          let resumed =
            List.map
              (fun sp ->
                match Hashtbl.find_opt cached (Spec.to_string sp) with
                | Some v ->
                    render sp (Option.get (Core.Metrics.of_json v))
                | None -> render sp (Exec.run sp))
              specs
          in
          List.iter2
            (check_str "resumed output byte-identical")
            uninterrupted resumed)

(* --- Spec round-trip --- *)

let roundtrip sp =
  match Spec.of_string (Spec.to_string sp) with
  | Ok sp' ->
      check_bool (Printf.sprintf "round-trip %s" (Spec.to_string sp)) true
        (Spec.equal sp sp')
  | Error e -> Alcotest.failf "round-trip failed on %S: %s" (Spec.to_string sp) e

let test_spec_roundtrip () =
  roundtrip (Spec.make ~sched:"WPS" (Spec.example 1));
  roundtrip (Spec.make ~seed:0 ~horizon:1 ~sched:"IWFQ-I" (Spec.example ~sum:0.25 2));
  roundtrip (Spec.make ~seed:(-3) ~sched:"Blind WRR" (Spec.example 6));
  roundtrip
    (Spec.make ~seed:7 ~horizon:50_000 ~sched:"CIF-Q"
       (Spec.file "examples/cell.scenario"));
  (* Whitespace-insensitive parse. *)
  (match Spec.of_string "example:1|WPS|seed=42|horizon=1000" with
  | Ok sp ->
      check_str "sched kept verbatim" "WPS" sp.Spec.sched;
      check_int "horizon" 1_000 sp.Spec.horizon
  | Error e -> Alcotest.failf "compact form rejected: %s" e);
  List.iter
    (fun bad ->
      match Spec.of_string bad with
      | Ok _ -> Alcotest.failf "accepted malformed spec %S" bad
      | Error _ -> ())
    [
      "";
      "garbage";
      "example:1 | WPS | seed=42";  (* missing horizon *)
      "example:9 | WPS | seed=1 | horizon=10";  (* unknown example *)
      "example:3?sum=0.1 | WPS | seed=1 | horizon=10";  (* sum needs ex 1-2 *)
      "example:1 | WPS | seed=x | horizon=10";
      "example:1 | WPS | seed=1 | horizon=0";
    ]

let test_spec_defaults_and_builder () =
  let sp = Spec.make ~sched:"WPS" (Spec.example 1) in
  check_int "default seed" Spec.default_seed sp.Spec.seed;
  check_int "default horizon" Spec.default_horizon sp.Spec.horizon;
  let sp' = Spec.with_sched "IWFQ" (Spec.with_horizon 5 (Spec.with_seed 9 sp)) in
  check_int "with_seed" 9 sp'.Spec.seed;
  check_int "with_horizon" 5 sp'.Spec.horizon;
  check_str "with_sched" "IWFQ" sp'.Spec.sched;
  (match Spec.example ~sum:0.5 3 with
  | _ -> Alcotest.fail "sum outside examples 1-2 must be rejected"
  | exception Invalid_argument _ -> ());
  match Spec.make ~horizon:0 ~sched:"WPS" (Spec.example 1) with
  | _ -> Alcotest.fail "non-positive horizon must be rejected"
  | exception Invalid_argument _ -> ()

let test_spec_of_scenario_file () =
  let path = Filename.temp_file "wfs_spec" ".scenario" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc
        "horizon 12345\nseed 9\nflow weight=1 source=cbr:2 channel=good\n";
      close_out oc;
      let sp = Spec.of_scenario_file path in
      check_int "seed lifted from file" 9 sp.Spec.seed;
      check_int "horizon lifted from file" 12_345 sp.Spec.horizon;
      check_str "default sched" "WPS" sp.Spec.sched;
      roundtrip sp)

(* --- Json --- *)

let test_json_roundtrip () =
  let doc =
    Json.Obj
      [
        ("null", Json.Null);
        ("yes", Json.Bool true);
        ("no", Json.Bool false);
        ("int", Json.Int (-42));
        ("floats", Json.Arr (List.map (fun f -> Json.Float f)
             [ 0.1; -3.25; 1e-9; 1.7976931348623157e308; 12345.6789; 2. ]));
        ("str", Json.Str "line\nbreak \"quoted\" \\ tab\t");
        ("empty_arr", Json.Arr []);
        ("empty_obj", Json.Obj []);
        ("nested", Json.Obj [ ("a", Json.Arr [ Json.Obj [ ("b", Json.Int 1) ] ]) ]);
      ]
  in
  let text = Json.to_string doc in
  (match Json.of_string text with
  | Ok doc' -> check_str "reparse then reprint" text (Json.to_string doc')
  | Error e -> Alcotest.failf "round-trip parse failed: %s" e);
  List.iter
    (fun bad ->
      match Json.of_string bad with
      | Ok _ -> Alcotest.failf "accepted malformed JSON %S" bad
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "\"unterminated"; "{\"a\":1} x" ]

let test_json_float_fidelity () =
  List.iter
    (fun f ->
      let s = Json.float_to_string f in
      check_bool (Printf.sprintf "%s restores bits" s) true
        (Float.equal (float_of_string s) f))
    [ 0.1; 0.2; 0.3; 1. /. 3.; 1e-300; 123456789.123456789; 2.5e-8 ]

(* --- Artifact --- *)

let sample_artifact () =
  Artifact.v ~horizon:20_000 ~seed:42 ~seeds:3 ~jobs:4 ~runs:130 ~slots:2_600_000
    ~wall_clock_s:3.25
    ~tables:
      [
        {
          Artifact.title = "Table 1 (measured)";
          columns = [ "alg"; "d1"; "l1" ];
          rows = [ [ "WRR-P"; "31.1"; "0" ]; [ "SwapA-P"; "22.5±1.2"; "0" ] ];
        };
        { Artifact.title = "empty"; columns = []; rows = [] };
      ]

let test_artifact_roundtrip () =
  let art = sample_artifact () in
  check_bool "slots_per_sec derived" true
    (Float.equal art.Artifact.slots_per_sec (2_600_000. /. 3.25));
  let path = Filename.temp_file "wfs_bench" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Artifact.write ~path art;
      match Artifact.read path with
      | Ok art' -> check_bool "read back equal" true (Artifact.equal art art')
      | Error e -> Alcotest.failf "artifact read failed: %s" e)

let test_artifact_rejects_bad_schema () =
  let json =
    Artifact.to_json (sample_artifact ())
    |> function
    | Json.Obj fields ->
        Json.Obj
          (List.map
             (fun (k, v) ->
               if String.equal k "schema" then (k, Json.Str "wfs-bench/999")
               else (k, v))
             fields)
    | j -> j
  in
  match Artifact.of_json json with
  | Ok _ -> Alcotest.fail "unknown schema version must be rejected"
  | Error _ -> ()

(* --- Registries --- *)

let test_registry_lookup () =
  let e = Core.Registry.get "wps" in
  check_str "WPS aliases SwapA-P (case-insensitive)" "SwapA-P" e.Core.Registry.name;
  check_str "IWFQ alias" "IWFQ-P" (Core.Registry.get "iwfq").Core.Registry.name;
  check_str "CIF-Q alias" "CIF-Q-P" (Core.Registry.get "CIFQ").Core.Registry.name;
  check_bool "mem canonical" true (Core.Registry.mem "Blind WRR");
  check_bool "mem unknown" false (Core.Registry.mem "PGPS");
  (match Core.Registry.get "nope" with
  | _ -> Alcotest.fail "unknown name must raise"
  | exception Invalid_argument msg ->
      check_bool "error lists known names" true
        (String.length msg > 0
        && String.length (String.concat "" [ msg ]) > 20));
  let names = Core.Registry.names () in
  check_int "no duplicate canonical names"
    (List.length names)
    (List.length (List.sort_uniq String.compare names));
  (* names() enumerates each scheduler once: aliases must not add rows. *)
  check_bool "WPS not a separate row" true
    (not (List.exists (String.equal "WPS") names))

let test_registry_predictors () =
  let kind name = (Core.Registry.get name).Core.Registry.predictor in
  check_bool "-I rows are oracle" true
    (kind "SwapA-I" = Wfs_channel.Predictor.Perfect);
  check_bool "-P rows are one-step" true
    (kind "SwapA-P" = Wfs_channel.Predictor.One_step);
  check_bool "blind WRR is blind" true
    (kind "Blind WRR" = Wfs_channel.Predictor.Blind)

let test_wireline_registry () =
  check_str "VC alias" "VirtualClock"
    (Wfs_wireline.Registry.get "VC").Wfs_wireline.Registry.name;
  check_str "WF2Q unicode alias" "WF2Q"
    (Wfs_wireline.Registry.get "WF\xc2\xb2Q").Wfs_wireline.Registry.name;
  let flows = Wfs_wireline.Flow.of_weights [| 1.; 2. |] in
  let instances = Wfs_wireline.Registry.instances ~capacity:1. flows in
  check_int "eight wireline schedulers" 8 (List.length instances);
  (* Instance names line up with registration order. *)
  List.iter2
    (fun name (inst : Wfs_wireline.Sched_intf.instance) ->
      check_bool
        (Printf.sprintf "%s constructs %s" name inst.Wfs_wireline.Sched_intf.name)
        true
        (String.length inst.Wfs_wireline.Sched_intf.name > 0))
    (Wfs_wireline.Registry.names ())
    instances

let suite =
  [
    ("pool matches sequential", `Quick, test_pool_matches_sequential);
    ("pool edge cases", `Quick, test_pool_empty_and_oversized);
    ("pool propagates errors", `Quick, test_pool_propagates_errors);
    ("exec invariant under jobs", `Slow, test_exec_jobs_invariant);
    ("exec invariant under order", `Slow, test_exec_order_invariant);
    ("exec replicate", `Slow, test_exec_replicate);
    ("journal truncate and resume", `Slow, test_journal_truncate_resume);
    ("spec round-trip", `Quick, test_spec_roundtrip);
    ("spec defaults and builder", `Quick, test_spec_defaults_and_builder);
    ("spec from scenario file", `Quick, test_spec_of_scenario_file);
    ("json round-trip", `Quick, test_json_roundtrip);
    ("json float fidelity", `Quick, test_json_float_fidelity);
    ("artifact round-trip", `Quick, test_artifact_roundtrip);
    ("artifact schema check", `Quick, test_artifact_rejects_bad_schema);
    ("registry lookup", `Quick, test_registry_lookup);
    ("registry predictors", `Quick, test_registry_predictors);
    ("wireline registry", `Quick, test_wireline_registry);
  ]
