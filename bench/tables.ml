(* Regeneration of every evaluation table in the paper (Tables 1-11).
   Parameter tables 5, 7 and 10 are inputs and are printed alongside their
   result tables.  Measured tables print next to the published reference so
   the shape (orderings, ratios, crossovers) can be compared directly.

   Each section declares its simulations as keyed {!Runs.job}s up front;
   {!all} executes the distinct jobs on the domain pool, then renders every
   section sequentially from the merged results.  Sections that need the
   same run (same spec key) share it — e.g. the burstiness series reuses
   Table 1/2/3 cells.  With [seeds > 1] the spec-backed sections replicate
   each run over consecutive seeds and report mean ± 95% CI cells. *)

module Core = Wfs_core
module P = Core.Presets
module T = Wfs_util.Tablefmt
module M = Core.Metrics
module Spec = Wfs_runner.Spec
module Summary = Wfs_util.Stats.Summary

type opts = { horizon : int; seed : int; seeds : int; jobs : int }

type section = {
  name : string;
  jobs : Runs.job list;
  render : (string -> Runs.result) -> T.t list;
}

let cell = T.cell_of_float

(* "200000 slots" or "200000 slots, 5 seeds" for table titles. *)
let run_info ?horizon ~opts () =
  let h = Option.value ~default:opts.horizon horizon in
  if opts.seeds > 1 then Printf.sprintf "%d slots, %d seeds" h opts.seeds
  else Printf.sprintf "%d slots" h

(* --- spec-backed runs, replicated over consecutive seeds --- *)

let spec ~opts ?sum ?seed n sched =
  Spec.make
    ~seed:(Option.value ~default:opts.seed seed)
    ~horizon:opts.horizon ~sched
    (Spec.example ?sum n)

let replicas ~opts sp =
  List.init opts.seeds (fun k -> Spec.with_seed (sp.Spec.seed + k) sp)

let spec_jobs ~opts sp = List.map Runs.spec_job (replicas ~opts sp)

let spec_metrics ~opts get sp =
  List.map (fun s -> Runs.metrics get (Spec.to_string s)) (replicas ~opts sp)

(* --- custom runs (knobs a spec can't express), same replication --- *)

let custom_key key seed = Printf.sprintf "%s #seed=%d" key seed

let custom_jobs ~opts ?horizon ~key (f : seed:int -> Core.Metrics.t) =
  let slots = Option.value ~default:opts.horizon horizon in
  List.init opts.seeds (fun k ->
      let seed = opts.seed + k in
      {
        Runs.key = custom_key key seed;
        slots;
        run = (fun () -> Runs.Metrics (f ~seed));
      })

let custom_metrics ~opts get key =
  List.init opts.seeds (fun k ->
      Runs.metrics get (custom_key key (opts.seed + k)))

(* One rendered cell from a replicated run: the plain value for a single
   seed, "mean±ci" (95% Student-t half-width) across several. *)
let agg ?decimals ms f =
  match ms with
  | [ m ] -> cell ?decimals (f m)
  | ms ->
      let s = Summary.create () in
      List.iter (fun m -> Summary.add s (f m)) ms;
      Printf.sprintf "%s±%s"
        (cell ?decimals (Summary.mean s))
        (cell ?decimals (Summary.ci95 s))

let run_direct ?observer ~horizon ~predictor setups sched =
  let cfg =
    Core.Simulator.config ~predictor ?observer
      ~invariants:(Runs.invariants_enabled ()) ~horizon setups
  in
  Core.Simulator.run cfg sched

(* The 9-algorithm, 2-flow grid of Tables 1-4 (plus IWFQ rows, which the
   paper defines but does not simulate). *)
let example1_grid ~opts ~name ~title ~example ~sum ~ref_table =
  let algorithms =
    List.map (fun e -> e.Core.Registry.name) (Core.Registry.table1_extended ())
  in
  let spec_of alg = spec ~opts ~sum example alg in
  let jobs = List.concat_map (fun alg -> spec_jobs ~opts (spec_of alg)) algorithms in
  let render get =
    let t =
      T.create ~title
        ~columns:[ "alg"; "d1"; "l1"; "dmax1"; "sd1"; "d2"; "l2"; "dmax2"; "sd2" ]
    in
    List.iter
      (fun alg ->
        let ms = spec_metrics ~opts get (spec_of alg) in
        T.add_row t
          [
            alg;
            agg ms (fun m -> M.mean_delay m ~flow:0);
            agg ~decimals:3 ms (fun m -> M.loss m ~flow:0);
            agg ms (fun m -> M.max_delay m ~flow:0);
            agg ms (fun m -> M.stddev_delay m ~flow:0);
            agg ms (fun m -> M.mean_delay m ~flow:1);
            agg ~decimals:3 ms (fun m -> M.loss m ~flow:1);
            agg ms (fun m -> M.max_delay m ~flow:1);
            agg ms (fun m -> M.stddev_delay m ~flow:1);
          ])
      algorithms;
    T.print t;
    print_newline ();
    Paper_ref.print ref_table;
    [ t ]
  in
  { name; jobs; render }

let table1 ~opts =
  example1_grid ~opts ~name:"Table 1"
    ~title:
      (Printf.sprintf "Table 1 (measured): Example 1, pg+pe = 0.1, %s"
         (run_info ~opts ()))
    ~example:1 ~sum:0.1 ~ref_table:Paper_ref.table1

let table2 ~opts =
  example1_grid ~opts ~name:"Table 2"
    ~title:
      (Printf.sprintf "Table 2 (measured): Example 1, pg+pe = 0.5, %s"
         (run_info ~opts ()))
    ~example:1 ~sum:0.5 ~ref_table:Paper_ref.table2

let table3 ~opts =
  example1_grid ~opts ~name:"Table 3"
    ~title:
      (Printf.sprintf
         "Table 3 (measured): Example 1, pg+pe = 1.0 (memoryless), %s"
         (run_info ~opts ()))
    ~example:1 ~sum:1.0 ~ref_table:Paper_ref.table3

let table4 ~opts =
  example1_grid ~opts ~name:"Table 4"
    ~title:
      (Printf.sprintf
         "Table 4 (measured): Example 2 (delay bound 100), pg+pe = 0.1, %s"
         (run_info ~opts ()))
    ~example:2 ~sum:0.1 ~ref_table:Paper_ref.table4

let params_table ~title rows =
  let t = T.create ~title ~columns:[ "source"; "rate"; "pg"; "pe" ] in
  List.iter (T.add_row t) rows;
  t

let table6 ~opts =
  let algorithms = [ "Blind WRR"; "WRR-P"; "SwapA-P" ] in
  let spec_of alg = spec ~opts 3 alg in
  let jobs = List.concat_map (fun alg -> spec_jobs ~opts (spec_of alg)) algorithms in
  let render get =
    let inputs =
      params_table ~title:"Table 5 (inputs): Example 3 source/channel parameters"
        [
          [ "1 (MMPP)"; "0.2"; "0.07"; "0.03" ];
          [ "2 (Poisson)"; "0.25"; "0.095"; "0.005" ];
          [ "3 (CBR)"; "0.25"; "0.09"; "0.01" ];
        ]
    in
    T.print inputs;
    print_newline ();
    let t =
      T.create
        ~title:
          (Printf.sprintf "Table 6 (measured): Example 3, %s" (run_info ~opts ()))
        ~columns:[ "alg"; "d1"; "l1"; "d2"; "l2"; "d3"; "l3" ]
    in
    List.iter
      (fun alg ->
        let ms = spec_metrics ~opts get (spec_of alg) in
        T.add_row t
          ([ alg ]
          @ List.concat_map
              (fun flow ->
                [
                  agg ms (fun m -> M.mean_delay m ~flow);
                  agg ~decimals:3 ms (fun m -> M.loss m ~flow);
                ])
              [ 0; 1; 2 ]))
      algorithms;
    T.print t;
    print_newline ();
    Paper_ref.print Paper_ref.table6;
    [ inputs; t ]
  in
  { name = "Tables 5+6"; jobs; render }

let table8 ~opts =
  let algorithms =
    List.map (fun e -> e.Core.Registry.name) (Core.Registry.table1 ())
  in
  let spec_of alg = spec ~opts 4 alg in
  let jobs = List.concat_map (fun alg -> spec_jobs ~opts (spec_of alg)) algorithms in
  let render get =
    let inputs =
      params_table ~title:"Table 7 (inputs): Example 4 source/channel parameters"
        [
          [ "1 (MMPP)"; "0.08"; "0.09"; "0.01" ];
          [ "2 (Poisson)"; "8.0"; "0.095"; "0.005" ];
          [ "3 (MMPP)"; "0.08"; "0.08"; "0.02" ];
          [ "4 (Poisson)"; "8.0"; "0.07"; "0.03" ];
          [ "5 (MMPP)"; "0.08"; "0.035"; "0.015" ];
        ]
    in
    T.print inputs;
    print_newline ();
    let t =
      T.create
        ~title:
          (Printf.sprintf "Table 8 (measured): Example 4, %s" (run_info ~opts ()))
        ~columns:[ "alg"; "d1"; "l1"; "l2"; "d3"; "l3"; "l4"; "d5"; "l5" ]
    in
    List.iter
      (fun alg ->
        let ms = spec_metrics ~opts get (spec_of alg) in
        (* Paper source numbering: sources 1..5 = flows 0..4.  The saturated
           sources 2 and 4 report the per-attempt drop share (their arrivals
           exceed capacity, so per-arrival loss is meaningless — the paper's
           own framing). *)
        T.add_row t
          [
            alg;
            agg ms (fun m -> M.mean_delay m ~flow:0);
            agg ~decimals:3 ms (fun m -> M.loss m ~flow:0);
            agg ~decimals:3 ms (fun m -> M.drop_share m ~flow:1);
            agg ms (fun m -> M.mean_delay m ~flow:2);
            agg ~decimals:3 ms (fun m -> M.loss m ~flow:2);
            agg ~decimals:3 ms (fun m -> M.drop_share m ~flow:3);
            agg ms (fun m -> M.mean_delay m ~flow:4);
            agg ~decimals:3 ms (fun m -> M.loss m ~flow:4);
          ])
      algorithms;
    T.print t;
    print_newline ();
    Paper_ref.print Paper_ref.table8;
    [ inputs; t ]
  in
  { name = "Tables 7+8"; jobs; render }

let table9 ~opts =
  let algorithms = [ "WRR-P"; "SwapA-P" ] in
  let spec_of alg = spec ~opts 5 alg in
  let jobs = List.concat_map (fun alg -> spec_jobs ~opts (spec_of alg)) algorithms in
  let render get =
    let t =
      T.create
        ~title:
          (Printf.sprintf "Table 9 (measured): Example 5, %s" (run_info ~opts ()))
        ~columns:
          [ "alg"; "d1"; "l1"; "d2"; "l2"; "d3"; "l3"; "d4"; "l4"; "d5"; "l5" ]
    in
    List.iter
      (fun alg ->
        let ms = spec_metrics ~opts get (spec_of alg) in
        T.add_row t
          ([ alg ]
          @ List.concat_map
              (fun flow ->
                [
                  agg ms (fun m -> M.mean_delay m ~flow);
                  agg ~decimals:3 ms (fun m -> M.loss m ~flow);
                ])
              [ 0; 1; 2; 3; 4 ]))
      algorithms;
    T.print t;
    print_newline ();
    Paper_ref.print Paper_ref.table9;
    [ t ]
  in
  { name = "Table 9"; jobs; render }

let table11 ~opts =
  let wrr_spec = spec ~opts 6 "WRR-P" in
  let sweep = [ (4, 4); (2, 4); (0, 4); (0, 1) ] in
  let swapa_spec = spec ~opts 6 "SwapA-P" in
  let sweep_key (d, c) = Printf.sprintf "t11/SwapA-P d=%d c=%d" d c in
  let jobs =
    spec_jobs ~opts wrr_spec
    @ List.concat_map
        (fun (d, c) ->
          custom_jobs ~opts ~key:(sweep_key (d, c)) (fun ~seed ->
              Wfs_runner.Exec.run
                ~limits:(P.example6_limits ~d ~c)
                ~invariants:(Runs.invariants_enabled ())
                (Spec.with_seed seed swapa_spec)))
        sweep
  in
  let render get =
    let inputs =
      params_table
        ~title:"Table 10 (inputs): Example 6 parameters (substituted; see DESIGN.md)"
        [
          [ "1-4 (Poisson)"; "0.22"; "0.095"; "0.005" ];
          [ "5 (Poisson)"; "0.07"; "0.03"; "0.07" ];
        ]
    in
    T.print inputs;
    print_newline ();
    let t =
      T.create
        ~title:
          (Printf.sprintf "Table 11 (measured): Example 6 credit/debit sweep, %s"
             (run_info ~opts ()))
        ~columns:[ "alg"; "D"; "C"; "d1"; "l1"; "sd1"; "d5"; "l5"; "sd5" ]
    in
    let add_row name d c ms =
      T.add_row t
        [
          name;
          d;
          c;
          agg ms (fun m -> M.mean_delay m ~flow:0);
          agg ~decimals:3 ms (fun m -> M.loss m ~flow:0);
          agg ms (fun m -> M.stddev_delay m ~flow:0);
          agg ms (fun m -> M.mean_delay m ~flow:4);
          agg ~decimals:3 ms (fun m -> M.loss m ~flow:4);
          agg ms (fun m -> M.stddev_delay m ~flow:4);
        ]
    in
    add_row "WRR-P" "-" "-" (spec_metrics ~opts get wrr_spec);
    List.iter
      (fun (d, c) ->
        add_row "SwapA-P" (string_of_int d) (string_of_int c)
          (custom_metrics ~opts get (sweep_key (d, c))))
      sweep;
    T.print t;
    print_newline ();
    Paper_ref.print Paper_ref.table11;
    [ inputs; t ]
  in
  { name = "Tables 10+11"; jobs; render }

(* --- Ablations beyond the paper's tables --- *)

let ablation_amortized_credit ~opts =
  (* Section 7's amortised-compensation extension: capping per-frame credit
     redemption smooths the clean flow's delay at small cost to the
     recovering flow. *)
  let caps = [ None; Some 2; Some 1 ] in
  let cap_label = function None -> "none" | Some k -> string_of_int k in
  let key cap = Printf.sprintf "ablate/credit-cap=%s" (cap_label cap) in
  let jobs =
    List.concat_map
      (fun cap ->
        custom_jobs ~opts ~key:(key cap) (fun ~seed ->
            let setups = P.example1 ~sum:0.1 ~seed () in
            run_direct ~horizon:opts.horizon
              ~predictor:Wfs_channel.Predictor.One_step setups
              (Core.Wps.instance
                 (Core.Wps.create
                    ~params:(Core.Params.swapa ?credit_per_frame:cap ())
                    (P.flows_of setups)))))
      caps
  in
  let render get =
    let t =
      T.create
        ~title:
          (Printf.sprintf
             "Ablation: per-frame credit redemption cap (Example 1, pg+pe=0.1, %s)"
             (run_info ~opts ()))
        ~columns:[ "redeem cap"; "d1"; "dmax1"; "d2"; "dmax2"; "sd2" ]
    in
    List.iter
      (fun cap ->
        let ms = custom_metrics ~opts get (key cap) in
        T.add_row t
          [
            cap_label cap;
            agg ms (fun m -> M.mean_delay m ~flow:0);
            agg ms (fun m -> M.max_delay m ~flow:0);
            agg ms (fun m -> M.mean_delay m ~flow:1);
            agg ms (fun m -> M.max_delay m ~flow:1);
            agg ms (fun m -> M.stddev_delay m ~flow:1);
          ])
      caps;
    T.print t;
    [ t ]
  in
  { name = "Ablation: amortised credits"; jobs; render }

let ablation_iwfq_vs_wps ~opts =
  (* IWFQ vs full WPS across burstiness regimes: average-case closeness
     (the paper's closing observation). *)
  let sums = [ 0.1; 0.25; 0.5; 0.75; 1.0 ] in
  let spec_of sum alg = spec ~opts ~sum 1 alg in
  let jobs =
    List.concat_map
      (fun sum ->
        List.concat_map
          (fun alg -> spec_jobs ~opts (spec_of sum alg))
          [ "IWFQ-P"; "SwapA-P" ])
      sums
  in
  let render get =
    let t =
      T.create
        ~title:
          (Printf.sprintf "Ablation: IWFQ vs WPS across burstiness (%s)"
             (run_info ~opts ()))
        ~columns:[ "pg+pe"; "IWFQ d1"; "SwapA d1"; "IWFQ d2"; "SwapA d2" ]
    in
    List.iter
      (fun sum ->
        let iwfq = spec_metrics ~opts get (spec_of sum "IWFQ-P") in
        let swapa = spec_metrics ~opts get (spec_of sum "SwapA-P") in
        T.add_row t
          [
            cell sum;
            agg iwfq (fun m -> M.mean_delay m ~flow:0);
            agg swapa (fun m -> M.mean_delay m ~flow:0);
            agg iwfq (fun m -> M.mean_delay m ~flow:1);
            agg swapa (fun m -> M.mean_delay m ~flow:1);
          ])
      sums;
    T.print t;
    [ t ]
  in
  { name = "Ablation: IWFQ vs WPS"; jobs; render }

let ablation_snoop_period ~opts =
  (* Section 6.1's proposed extension: periodic snooping trades prediction
     accuracy (delay/loss) for monitoring duty cycle.  Period 1 is exactly
     one-step prediction, so that row shares Table 1's SwapA-P run. *)
  let periods = [ 1; 2; 4; 8; 16 ] in
  let base_spec = spec ~opts ~sum:0.1 1 "SwapA-P" in
  let key period = Printf.sprintf "ablate/snoop=%d" period in
  let jobs =
    List.concat_map
      (fun period ->
        if period = 1 then spec_jobs ~opts base_spec
        else
          custom_jobs ~opts ~key:(key period) (fun ~seed ->
              let setups = P.example1 ~sum:0.1 ~seed () in
              run_direct ~horizon:opts.horizon
                ~predictor:(Wfs_channel.Predictor.Periodic_snoop period)
                setups
                (P.scheduler P.Swapa (P.flows_of setups))))
      periods
  in
  let render get =
    let t =
      T.create
        ~title:
          (Printf.sprintf
             "Ablation: periodic-snoop prediction (Example 1, pg+pe=0.1, %s)"
             (run_info ~opts ()))
        ~columns:[ "snoop period"; "d1"; "l1"; "duty cycle" ]
    in
    List.iter
      (fun period ->
        let ms =
          if period = 1 then spec_metrics ~opts get base_spec
          else custom_metrics ~opts get (key period)
        in
        T.add_row t
          [
            string_of_int period;
            agg ms (fun m -> M.mean_delay m ~flow:0);
            agg ~decimals:3 ms (fun m -> M.loss m ~flow:0);
            Printf.sprintf "1/%d" period;
          ])
      periods;
    T.print t;
    [ t ]
  in
  { name = "Ablation: snoop period"; jobs; render }

let series_burstiness ~opts =
  (* A figure the paper implies but never plots: the errored flow's mean
     delay as a function of channel burstiness (pg+pe), per scheduler, with
     PG fixed at 0.7.  Regenerates as a CSV-like series for plotting.
     Points shared with Tables 1-3 reuse those runs. *)
  let sums = [ 0.05; 0.1; 0.2; 0.35; 0.5; 0.75; 1.0 ] in
  let algs = [ "WRR-P"; "NoSwap-P"; "SwapA-P"; "IWFQ-P"; "Blind WRR" ] in
  let spec_of sum alg = spec ~opts ~sum 1 alg in
  let jobs =
    List.concat_map
      (fun sum -> List.concat_map (fun alg -> spec_jobs ~opts (spec_of sum alg)) algs)
      sums
  in
  let render get =
    let t =
      T.create
        ~title:
          (Printf.sprintf
             "Series: Example-1 flow-1 mean delay vs burstiness (PG=0.7, %s)"
             (run_info ~opts ()))
        ~columns:[ "pg+pe"; "WRR-P"; "NoSwap-P"; "SwapA-P"; "IWFQ-P"; "Blind loss" ]
    in
    List.iter
      (fun sum ->
        let d alg = agg (spec_metrics ~opts get (spec_of sum alg))
            (fun m -> M.mean_delay m ~flow:0)
        in
        let blind_loss =
          agg ~decimals:3
            (spec_metrics ~opts get (spec_of sum "Blind WRR"))
            (fun m -> M.loss m ~flow:0)
        in
        T.add_row t
          [ cell sum; d "WRR-P"; d "NoSwap-P"; d "SwapA-P"; d "IWFQ-P"; blind_loss ])
      sums;
    T.print t;
    [ t ]
  in
  { name = "Series: burstiness sweep"; jobs; render }

let mac_overhead ~opts =
  (* MAC integration: scheduling through the Section-6 MAC (uplink
     invisibility + control slots) vs the oracle scheduler evaluation. *)
  let key = "mac/overhead" in
  let job =
    {
      Runs.key;
      slots = opts.horizon;
      run =
        (fun () ->
          let rng = Wfs_util.Rng.create opts.seed in
          let ge seed pg pe =
            Wfs_channel.Gilbert_elliott.create ~rng:(Wfs_util.Rng.create seed)
              ~pg ~pe ()
          in
          let up host =
            { Wfs_mac.Frame.host; direction = Wfs_mac.Frame.Uplink; index = 0 }
          in
          (* Data flows get weight 8 so the unit-weight control flow costs
             ~6% of capacity instead of a third. *)
          let flows =
            [|
              {
                Wfs_mac.Mac_sim.addr = up 1;
                weight = 8.;
                source =
                  Wfs_traffic.Mmpp.paper_source
                    ~rng:(Wfs_util.Rng.create 11)
                    ~mean_rate:0.2 ();
                channel = ge 12 0.07 0.03;
                drop = Core.Params.Retx_limit 2;
              };
              {
                Wfs_mac.Mac_sim.addr = up 2;
                weight = 8.;
                source = Wfs_traffic.Cbr.create ~interarrival:2. ();
                channel = ge 13 0.095 0.005;
                drop = Core.Params.Retx_limit 2;
              };
            |]
          in
          let cfg = Wfs_mac.Mac_sim.config ~rng ~horizon:opts.horizon flows in
          Runs.Mac (Wfs_mac.Mac_sim.run cfg));
    }
  in
  let render get =
    let r = Runs.mac get key in
    let m = r.Wfs_mac.Mac_sim.metrics in
    let t =
      T.create
        ~title:
          (Printf.sprintf
             "MAC integration: Example-1-like cell via Section-6 MAC (%d slots)"
             opts.horizon)
        ~columns:[ "metric"; "value" ]
    in
    T.add_row t [ "uplink 1 mean delay"; cell (M.mean_delay m ~flow:0) ];
    T.add_row t [ "uplink 1 loss"; cell ~decimals:4 (M.loss m ~flow:0) ];
    T.add_row t [ "uplink 2 mean delay"; cell (M.mean_delay m ~flow:1) ];
    T.add_row t [ "control slots"; string_of_int r.Wfs_mac.Mac_sim.control_slots ];
    T.add_row t [ "data slots"; string_of_int r.Wfs_mac.Mac_sim.data_slots ];
    T.add_row t [ "idle slots"; string_of_int r.Wfs_mac.Mac_sim.idle_slots ];
    T.add_row t
      [ "notification wins"; string_of_int r.Wfs_mac.Mac_sim.notifications_won ];
    T.add_row t
      [
        "notification collisions";
        string_of_int r.Wfs_mac.Mac_sim.notification_collisions;
      ];
    T.add_row t
      [ "piggyback reveals"; string_of_int r.Wfs_mac.Mac_sim.piggyback_reveals ];
    T.add_row t [ "mean reveal delay"; cell r.Wfs_mac.Mac_sim.mean_reveal_delay ];
    T.print t;
    [ t ]
  in
  { name = "MAC integration"; jobs = [ job ]; render }

let ablation_swap_window ~opts =
  (* How much of full-WPS performance does the MAC's three-slot
     advertisement pipeline retain?  Sweep the intra-frame swap reach on
     Example 4 (5 flows, so frames are long enough for the window to
     bind). *)
  let windows = [ Some 1; Some 3; Some 5; None ] in
  let window_label = function None -> "whole frame" | Some w -> string_of_int w in
  let key w = Printf.sprintf "ablate/swap-window=%s" (window_label w) in
  let jobs =
    List.concat_map
      (fun window ->
        custom_jobs ~opts ~key:(key window) (fun ~seed ->
            let setups = P.example4 ~seed () in
            run_direct ~horizon:opts.horizon
              ~predictor:Wfs_channel.Predictor.One_step setups
              (Core.Wps.instance
                 (Core.Wps.create
                    ~params:(Core.Params.swapa ?swap_window:window ())
                    (P.flows_of setups)))))
      windows
  in
  let render get =
    let t =
      T.create
        ~title:
          (Printf.sprintf
             "Ablation: intra-frame swap window (Example 4, SwapA-P, %s)"
             (run_info ~opts ()))
        ~columns:[ "window"; "d1"; "d3"; "d5"; "idle slots" ]
    in
    List.iter
      (fun window ->
        let ms = custom_metrics ~opts get (key window) in
        T.add_row t
          [
            window_label window;
            agg ms (fun m -> M.mean_delay m ~flow:0);
            agg ms (fun m -> M.mean_delay m ~flow:2);
            agg ms (fun m -> M.mean_delay m ~flow:4);
            agg ~decimals:0 ms (fun m -> float_of_int (M.idle_slots m));
          ])
      windows;
    T.print t;
    [ t ]
  in
  { name = "Ablation: swap window"; jobs; render }

let ablation_successors ~opts =
  (* The research line the paper started: WPS vs IWFQ vs CIF-Q (its 1998
     successor with graceful degradation) vs the CSDPS prior art, on the
     Example 1 workload.  All but the off-default CIF-Q alpha resolve to
     registry specs (CIF-Q-P's default alpha is 0.9), sharing Table 1's
     runs. *)
  let rows =
    [
      ("CSDPS (prior art)", `Spec "CSDPS");
      ("WPS (this paper)", `Spec "SwapA-P");
      ("IWFQ (this paper)", `Spec "IWFQ-P");
      ("CIF-Q a=0.9 (successor)", `Spec "CIF-Q-P");
      ("CIF-Q a=0.5", `Alpha 0.5);
    ]
  in
  let spec_of name = spec ~opts ~sum:0.1 1 name in
  let alpha_key a = Printf.sprintf "ablate/cifq-alpha=%g" a in
  let jobs =
    List.concat_map
      (fun (_, how) ->
        match how with
        | `Spec name -> spec_jobs ~opts (spec_of name)
        | `Alpha a ->
            custom_jobs ~opts ~key:(alpha_key a) (fun ~seed ->
                let setups = P.example1 ~sum:0.1 ~seed () in
                run_direct ~horizon:opts.horizon
                  ~predictor:Wfs_channel.Predictor.One_step setups
                  (Core.Cifq.instance
                     (Core.Cifq.create ~alpha:a (P.flows_of setups)))))
      rows
  in
  let render get =
    let t =
      T.create
        ~title:
          (Printf.sprintf "Extension: lineage comparison on Example 1, pg+pe=0.1 (%s)"
             (run_info ~opts ()))
        ~columns:[ "scheduler"; "d1"; "dmax1"; "d2"; "dmax2"; "thpt1" ]
    in
    List.iter
      (fun (label, how) ->
        let ms =
          match how with
          | `Spec name -> spec_metrics ~opts get (spec_of name)
          | `Alpha a -> custom_metrics ~opts get (alpha_key a)
        in
        T.add_row t
          [
            label;
            agg ms (fun m -> M.mean_delay m ~flow:0);
            agg ms (fun m -> M.max_delay m ~flow:0);
            agg ms (fun m -> M.mean_delay m ~flow:1);
            agg ms (fun m -> M.max_delay m ~flow:1);
            agg ~decimals:4 ms (fun m -> M.throughput m ~flow:0 ~slots:opts.horizon);
          ])
      rows;
    T.print t;
    [ t ]
  in
  { name = "Extension: lineage comparison"; jobs; render }

let ablation_fairness ~opts =
  (* The paper's fairness criterion (equation 1) measured empirically:
     windowed normalised-service Jain index and worst gap per scheduler on
     two saturated flows whose channels differ (flow 0 clean, flow 1 bad
     half the time, bursty). *)
  let horizon = min opts.horizon 100_000 in
  let schedulers =
    [
      ("WRR", fun flows -> Core.Wps.instance (Core.Wps.create ~params:Core.Params.wrr flows));
      ( "NoSwap",
        fun flows -> Core.Wps.instance (Core.Wps.create ~params:(Core.Params.noswap ()) flows) );
      ( "SwapA (WPS)",
        fun flows -> Core.Wps.instance (Core.Wps.create ~params:(Core.Params.swapa ()) flows) );
      ( "SwapA C=D=16",
        fun flows ->
          Core.Wps.instance
            (Core.Wps.create
               ~params:(Core.Params.swapa ~credit_limit:16 ~debit_limit:16 ())
               flows) );
      ("IWFQ", fun flows -> Core.Iwfq.instance (Core.Iwfq.create flows));
      ( "CSDPS (related work)",
        fun flows -> Core.Csdps.instance (Core.Csdps.create flows) );
    ]
  in
  let key name = Printf.sprintf "fair/%s" name in
  let jobs =
    List.map
      (fun (name, make_sched) ->
        {
          Runs.key = key name;
          slots = horizon;
          run =
            (fun () ->
              let flows =
                Array.init 2 (fun id -> Core.Params.flow ~id ~weight:1. ())
              in
              let sched = make_sched flows in
              let monitor =
                Core.Fairness.Monitor.create ~weights:[| 1.; 1. |] ~window:100
                  ~sched
              in
              let master = Wfs_util.Rng.create opts.seed in
              let setups =
                Array.init 2 (fun i ->
                    {
                      Core.Simulator.flow = flows.(i);
                      source = Wfs_traffic.Cbr.create ~interarrival:1. ();
                      channel =
                        (if i = 1 then
                           Wfs_channel.Gilbert_elliott.of_burstiness
                             ~rng:(Wfs_util.Rng.split master) ~good_prob:0.5
                             ~sum:0.1 ()
                         else Wfs_channel.Error_free.create ());
                    })
              in
              ignore
                (run_direct
                   ~observer:(Core.Fairness.Monitor.observer monitor)
                   ~horizon ~predictor:Wfs_channel.Predictor.One_step setups
                   sched);
              Runs.Fairness
                {
                  windows = Core.Fairness.Monitor.windows_sampled monitor;
                  jain = Core.Fairness.Monitor.mean_jain monitor;
                  gap = Core.Fairness.Monitor.worst_gap monitor;
                });
        })
      schedulers
  in
  let render get =
    let t =
      T.create
        ~title:
          (Printf.sprintf
             "Ablation: windowed fairness, saturated flows, asymmetric channels (%d slots)"
             horizon)
        ~columns:[ "scheduler"; "windows"; "mean Jain"; "worst gap (pkts/weight)" ]
    in
    List.iter
      (fun (name, _) ->
        match get (key name) with
        | Runs.Fairness { windows; jain; gap } ->
            T.add_row t
              [
                name;
                string_of_int windows;
                cell ~decimals:4 jain;
                cell gap;
              ]
        | _ -> invalid_arg "fairness job returned a non-fairness result")
      schedulers;
    T.print t;
    [ t ]
  in
  { name = "Ablation: fairness"; jobs; render }

let ablation_aloha ~opts =
  (* Section 6.2's suggested improvement: p-persistent ALOHA in the
     notification sub-slot vs the single-shot baseline, under contention
     pressure from many sporadic uplink flows. *)
  let horizon = min opts.horizon 50_000 in
  let policies =
    [
      ("single-shot", Wfs_mac.Mac_sim.Single_shot);
      ("aloha p=0.75", Wfs_mac.Mac_sim.Aloha 0.75);
      ("aloha p=0.5", Wfs_mac.Mac_sim.Aloha 0.5);
      ("aloha p=0.25", Wfs_mac.Mac_sim.Aloha 0.25);
    ]
  in
  let key name = Printf.sprintf "mac/aloha/%s" name in
  let jobs =
    List.map
      (fun (name, contention) ->
        {
          Runs.key = key name;
          slots = horizon;
          run =
            (fun () ->
              let up host =
                { Wfs_mac.Frame.host; direction = Wfs_mac.Frame.Uplink; index = 0 }
              in
              let flows =
                Array.init 12 (fun i ->
                    {
                      Wfs_mac.Mac_sim.addr = up (i + 1);
                      weight = 1.;
                      source =
                        Wfs_traffic.Onoff.create
                          ~rng:(Wfs_util.Rng.create (opts.seed + i))
                          ~p_on_to_off:0.5 ~p_off_to_on:0.01 ();
                      channel = Wfs_channel.Error_free.create ();
                      drop = Core.Params.No_drop;
                    })
              in
              let cfg =
                Wfs_mac.Mac_sim.config
                  ~rng:(Wfs_util.Rng.create opts.seed)
                  ~contention ~horizon flows
              in
              Runs.Mac (Wfs_mac.Mac_sim.run cfg));
        })
      policies
  in
  let render get =
    let t =
      T.create
        ~title:
          (Printf.sprintf
             "Ablation: notification contention policy, 12 sporadic uplinks (%d slots)"
             horizon)
        ~columns:
          [ "policy"; "wins"; "collisions"; "mean reveal delay"; "mean delay f0" ]
    in
    List.iter
      (fun (name, _) ->
        let r = Runs.mac get (key name) in
        T.add_row t
          [
            name;
            string_of_int r.Wfs_mac.Mac_sim.notifications_won;
            string_of_int r.Wfs_mac.Mac_sim.notification_collisions;
            cell r.Wfs_mac.Mac_sim.mean_reveal_delay;
            cell (M.mean_delay r.Wfs_mac.Mac_sim.metrics ~flow:0);
          ])
      policies;
    T.print t;
    [ t ]
  in
  { name = "Ablation: notification contention"; jobs; render }

let seed_confidence ~opts =
  (* The main tables use common random numbers across algorithms (plus
     optional --seeds replication).  This section quantifies raw seed
     sensitivity: Table 1's headline metrics across five fixed seeds,
     mean ± stddev. *)
  let seeds = [ 1; 2; 3; 4; 5 ] in
  let algs = [ "WRR-P"; "SwapA-P"; "Blind WRR" ] in
  let spec_of alg seed = spec ~opts ~sum:0.1 ~seed 1 alg in
  let jobs =
    List.concat_map
      (fun alg -> List.map (fun seed -> Runs.spec_job (spec_of alg seed)) seeds)
      algs
  in
  let render get =
    let t =
      T.create
        ~title:
          (Printf.sprintf
             "Seed sensitivity: Example 1 (pg+pe=0.1), 5 seeds x %d slots"
             opts.horizon)
        ~columns:[ "metric"; "mean"; "stddev"; "min"; "max" ]
    in
    let metric name alg f =
      let s = Summary.create () in
      List.iter
        (fun seed ->
          Summary.add s (f (Runs.metrics get (Spec.to_string (spec_of alg seed)))))
        seeds;
      T.add_row t
        [
          name;
          cell (Summary.mean s);
          cell (Summary.stddev s);
          cell (Summary.min s);
          cell (Summary.max s);
        ]
    in
    metric "WRR-P d1" "WRR-P" (fun m -> M.mean_delay m ~flow:0);
    metric "SwapA-P d1" "SwapA-P" (fun m -> M.mean_delay m ~flow:0);
    metric "SwapA-P d2" "SwapA-P" (fun m -> M.mean_delay m ~flow:1);
    metric "Blind WRR l1" "Blind WRR" (fun m -> M.loss m ~flow:0);
    T.print t;
    [ t ]
  in
  { name = "Seed sensitivity"; jobs; render }

let bounds_check ~opts =
  (* Section 5 empirically: Fact 1 and the throughput/delay theorems on an
     Example-1 run. *)
  let horizon = min opts.horizon 50_000 in
  let make_setups () = P.example1 ~sum:0.1 ~seed:opts.seed () in
  let checks =
    [
      ( "Fact 1: aggregate lag <= B",
        fun () ->
          Wfs_bounds.Verify.check_fact1 ~horizon ~make_setups
            ~predictor:Wfs_channel.Predictor.Perfect () );
      ( "Thm 2/6: long-term throughput (shift 600, uncapped lag)",
        fun () ->
          Wfs_bounds.Verify.check_long_term_throughput
            ~params:{ (Core.Params.iwfq_defaults ~n_flows:2) with lag_total = 1000. }
            ~horizon ~shift:600 ~make_setups
            ~predictor:Wfs_channel.Predictor.Perfect ~flow:0 () );
      ( "Thm 1: error-free flow delay shift <= B+1",
        fun () ->
          Wfs_bounds.Verify.check_error_free_delay
            ~params:{ (Core.Params.iwfq_defaults ~n_flows:2) with lag_total = 8. }
            ~horizon ~make_setups ~predictor:Wfs_channel.Predictor.Perfect ~flow:1
            () );
      ( "Thm 3: new-queue delay of error-free flow",
        fun () ->
          Wfs_bounds.Verify.check_new_queue_delay ~horizon ~make_setups
            ~predictor:Wfs_channel.Predictor.Perfect ~flow:1 () );
      ( "Thm 7: short-term throughput (100-slot windows)",
        fun () ->
          Wfs_bounds.Verify.check_short_term_throughput ~horizon ~window:100
            ~make_setups ~predictor:Wfs_channel.Predictor.Perfect ~flow:0 () );
    ]
  in
  let key name = Printf.sprintf "bounds/%s" name in
  let jobs =
    List.map
      (fun (name, check) ->
        {
          Runs.key = key name;
          slots = horizon;
          run = (fun () -> Runs.Bounds (check ()));
        })
      checks
  in
  let render get =
    let t =
      T.create
        ~title:
          (Printf.sprintf "Section 5 bounds, verified empirically (%d slots)"
             horizon)
        ~columns:[ "guarantee"; "samples"; "violations"; "worst slack" ]
    in
    List.iter
      (fun (name, _) ->
        let r = Runs.bounds get (key name) in
        T.add_row t
          [
            name;
            string_of_int r.Wfs_bounds.Verify.samples;
            string_of_int r.Wfs_bounds.Verify.violations;
            cell r.Wfs_bounds.Verify.worst_slack;
          ])
      checks;
    T.print t;
    [ t ]
  in
  { name = "Bounds verification"; jobs; render }

let sections ~opts =
  [
    table1 ~opts;
    table2 ~opts;
    table3 ~opts;
    table4 ~opts;
    table6 ~opts;
    table8 ~opts;
    table9 ~opts;
    table11 ~opts;
    ablation_amortized_credit ~opts;
    ablation_iwfq_vs_wps ~opts;
    ablation_snoop_period ~opts;
    ablation_swap_window ~opts;
    ablation_successors ~opts;
    ablation_fairness ~opts;
    ablation_aloha ~opts;
    series_burstiness ~opts;
    mac_overhead ~opts;
    seed_confidence ~opts;
    bounds_check ~opts;
  ]

let to_artifact t =
  {
    Wfs_runner.Artifact.title = T.title t;
    columns = T.columns t;
    rows = T.rows t;
  }

let all ?run_opts ~opts () =
  let secs = sections ~opts in
  let run_opts =
    match run_opts with
    | Some r -> r
    | None -> Runs.default_opts ~jobs:opts.jobs
  in
  let stats, get, failures =
    Runs.exec ~opts:run_opts (List.concat_map (fun s -> s.jobs) secs)
  in
  let tables =
    List.concat_map
      (fun s ->
        Printf.printf "\n=== %s ===\n\n" s.name;
        match s.render get with
        | ts -> ts
        | exception Runs.Missing key ->
            Printf.printf "(section skipped: job %S failed; see failure table)\n"
              key;
            [])
      secs
  in
  (List.map to_artifact tables, stats, failures)
