(* Benchmark harness entry point.

   Default: regenerate every paper table (1-11), the ablations, the MAC
   integration figures and the Section-5 bound checks on a pool of worker
   domains, write the machine-readable BENCH_<timestamp>.json artifact,
   then run the Bechamel micro-benchmarks.

   Arguments:
     --quick             shorter horizon (20k slots)
     --horizon N         explicit horizon in slots (default 200000)
     --seed N            base PRNG seed (default 42)
     --seeds K           replications per run, seeds N..N+K-1 (default 1);
                         K > 1 renders mean±95% CI cells
     --jobs N            worker domains (default: all cores; 1 = sequential)
     --json PATH         artifact path (default BENCH_<timestamp>.json)
     --no-json           skip the artifact
     --tables-only       skip macro- and micro-benchmarks
     --perf-only         only micro-benchmarks
     --micro             only the fast-path primitives micro-benchmarks
                         (Flow_heap min_accept, Flow_set find_from,
                         Event_cal push/pop)
     --macro-only        only the end-to-end macro-benchmark (slots/s);
                         wall-clock covers the run loop only, never
                         table/JSON serialization
     --eventcomp         only the event-compression macro-benchmark:
                         paper schedulers x {2,16,64,256} flows x
                         {0.9,0.05} load, fast path off and on, with
                         delivered-packet identity checked per pair
     --topo              only the multi-cell topology macro-benchmark
                         (64 cells x 256 flows sharded over --jobs domains,
                         handoffs at epoch barriers; uses --macro-horizon)
     --topo-faults PLAN  chaos fault plan for the topology benchmark
                         (crash:R;recover:R;lose:R;corrupt:R;blackout:RxN;
                         exn:R;persist:R;budget:N); adds crashes/rehomed
                         degradation columns
     --macro-horizon N   slots per macro-benchmark run
                         (default 20000; 5000 with --quick)
     --resume PATH       checkpoint journal: created if absent, and jobs
                         whose results it already holds are not re-run
     --retries N         extra attempts per failed job (same RNG stream)
     --max-slots N       refuse jobs whose declared slot count exceeds N
     --check-invariants  run the paper-property monitors in every job
     --flight-recorder N keep the last N trace events per job; a failed
                         job's error context reports them
     --profile           self-profiling dashboard: one instrumented run
                         (Example 2, SwapA-P) with per-phase timings,
                         ns/slot, stage spans and probe instruments

   Table output is byte-identical for every --jobs value: each run draws
   from RNG streams split from its own spec seed, and results merge by
   input position, not completion order.  Failed jobs never abort the
   sweep: their sections are skipped, a failure table is printed, and the
   exit status is 3. *)

let usage =
  "usage: main.exe [--quick] [--horizon N] [--seed N] [--seeds K] [--jobs N]\n\
  \                [--json PATH | --no-json]\n\
  \                [--tables-only | --perf-only | --micro | --macro-only |\n\
  \                 --eventcomp | --topo]\n\
  \                [--topo-faults PLAN]\n\
  \                [--macro-horizon N] [--resume PATH] [--retries N]\n\
  \                [--max-slots N] [--check-invariants] [--flight-recorder N]\n\
  \                [--profile]"

let die fmt =
  Printf.ksprintf
    (fun msg ->
      Printf.eprintf "error: %s\n%s\n" msg usage;
      exit 2)
    fmt

(* The --profile dashboard: one fully instrumented run (Example 2,
   SwapA-P — the paper's main workload with the richest scheduler state)
   showing where slot time goes, how the stages nest, and what the
   standard probe instruments saw.  The run is separate from the measured
   sweeps, so profiling never perturbs reported numbers. *)
let profile_dashboard ~horizon ~seed =
  let prof = Wfs_obs.Profiler.create () in
  let reg = Wfs_obs.Instruments.create () in
  let spec =
    Wfs_runner.Spec.make ~seed ~horizon ~sched:"SwapA-P"
      (Wfs_runner.Spec.example 2)
  in
  let n_flows = Array.length (Wfs_runner.Exec.setups_of spec) in
  Wfs_obs.Profiler.span prof "dashboard" (fun () ->
      let _metrics =
        Wfs_obs.Profiler.span prof "run:SwapA-P" (fun () ->
            Wfs_runner.Exec.run
              ~probe:(fun sched ->
                Wfs_obs.Probe.create ~instruments:reg ~n_flows sched)
              ~profiler:(Wfs_obs.Profiler.hooks prof) spec)
      in
      Wfs_obs.Profiler.span prof "render" (fun () ->
          Wfs_util.Tablefmt.print
            (Wfs_obs.Profiler.phase_table ~slots:horizon prof);
          print_newline ();
          Wfs_util.Tablefmt.print
            (Wfs_obs.Instruments.to_table ~title:"probe instruments" reg)));
  print_newline ();
  Wfs_util.Tablefmt.print (Wfs_obs.Profiler.span_table prof)

let () =
  let quick = ref false in
  let horizon = ref None in
  let seed = ref 42 in
  let seeds = ref 1 in
  let jobs = ref None in
  let json_path = ref None in
  let write_json = ref true in
  let tables = ref true in
  let perf = ref true in
  let macro_only = ref false in
  let eventcomp_only = ref false in
  let micro_only = ref false in
  let topo_only = ref false in
  let topo_faults = ref None in
  let macro_horizon = ref None in
  let resume = ref None in
  let retries = ref 0 in
  let max_slots = ref None in
  let invariants = ref false in
  let flight_recorder = ref None in
  let profile = ref false in
  let int_arg flag value =
    match int_of_string_opt value with
    | Some n -> n
    | None -> die "%s expects an integer, got %S" flag value
  in
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
        quick := true;
        parse rest
    | ("--horizon" as flag) :: value :: rest ->
        let n = int_arg flag value in
        if n <= 0 then die "%s must be positive, got %d" flag n;
        horizon := Some n;
        parse rest
    | ("--seed" as flag) :: value :: rest ->
        seed := int_arg flag value;
        parse rest
    | ("--seeds" as flag) :: value :: rest ->
        let n = int_arg flag value in
        if n < 1 then die "%s must be >= 1, got %d" flag n;
        seeds := n;
        parse rest
    | ("--jobs" as flag) :: value :: rest ->
        let n = int_arg flag value in
        if n < 1 then die "%s must be >= 1, got %d" flag n;
        jobs := Some n;
        parse rest
    | "--json" :: path :: rest ->
        json_path := Some path;
        parse rest
    | "--no-json" :: rest ->
        write_json := false;
        parse rest
    | "--tables-only" :: rest ->
        perf := false;
        parse rest
    | "--perf-only" :: rest ->
        tables := false;
        parse rest
    | "--macro-only" :: rest ->
        macro_only := true;
        parse rest
    | "--eventcomp" :: rest ->
        eventcomp_only := true;
        parse rest
    | "--micro" :: rest ->
        micro_only := true;
        parse rest
    | "--topo" :: rest ->
        topo_only := true;
        parse rest
    | ("--topo-faults" as flag) :: value :: rest ->
        (match Wfs_runner.Spec.faults_of_string value with
        | Ok plan -> topo_faults := Some plan
        | Error e -> die "%s: %s" flag e);
        parse rest
    | ("--macro-horizon" as flag) :: value :: rest ->
        let n = int_arg flag value in
        if n <= 0 then die "%s must be positive, got %d" flag n;
        macro_horizon := Some n;
        parse rest
    | "--resume" :: path :: rest ->
        resume := Some path;
        parse rest
    | ("--retries" as flag) :: value :: rest ->
        let n = int_arg flag value in
        if n < 0 then die "%s must be >= 0, got %d" flag n;
        retries := n;
        parse rest
    | ("--max-slots" as flag) :: value :: rest ->
        let n = int_arg flag value in
        if n <= 0 then die "%s must be positive, got %d" flag n;
        max_slots := Some n;
        parse rest
    | "--check-invariants" :: rest ->
        invariants := true;
        parse rest
    | ("--flight-recorder" as flag) :: value :: rest ->
        let n = int_arg flag value in
        if n < 1 then die "%s must be >= 1, got %d" flag n;
        flight_recorder := Some n;
        parse rest
    | "--profile" :: rest ->
        profile := true;
        parse rest
    | [ ("--horizon" | "--seed" | "--seeds" | "--jobs" | "--json" | "--resume"
        | "--retries" | "--max-slots" | "--macro-horizon" | "--flight-recorder"
        | "--topo-faults") as flag ] ->
        die "%s expects a value" flag
    | arg :: _ -> die "unknown argument %s" arg
  in
  parse (List.tl (Array.to_list Sys.argv));
  let horizon =
    match !horizon with
    | Some n -> n
    | None -> if !quick then 20_000 else 200_000
  in
  let jobs =
    match !jobs with Some n -> n | None -> Wfs_runner.Pool.default_jobs ()
  in
  let macro_horizon =
    match !macro_horizon with
    | Some n -> n
    | None -> if !quick then 5_000 else 20_000
  in
  let exclusive =
    !macro_only || !eventcomp_only || !micro_only || !topo_only
  in
  let do_tables = !tables && not exclusive in
  let do_micro = !perf && not exclusive in
  let do_macro =
    (!macro_only || (!tables && !perf))
    && not (!eventcomp_only || !micro_only || !topo_only)
  in
  let do_eventcomp = !eventcomp_only in
  let do_primitives = !micro_only in
  let do_topo = !topo_only in
  let opts = { Tables.horizon; seed = !seed; seeds = !seeds; jobs } in
  let run_opts =
    {
      Runs.jobs;
      retries = !retries;
      max_slots = !max_slots;
      invariants = !invariants;
      flight_recorder = !flight_recorder;
      resume = !resume;
      params =
        [
          ("horizon", Wfs_util.Json.Int horizon);
          ("seed", Wfs_util.Json.Int !seed);
          ("seeds", Wfs_util.Json.Int !seeds);
        ];
    }
  in
  Printf.printf
    "Wireless fair scheduling benchmarks (horizon=%d slots, seed=%d, seeds=%d, jobs=%d)\n"
    horizon !seed !seeds jobs;
  let failed = ref false in
  let acc_tables = ref [] in
  let acc_runs = ref 0 in
  let acc_slots = ref 0 in
  let acc_wall = ref 0. in
  let ran_any = ref false in
  if do_tables then begin
    let t0 = Unix.gettimeofday () in
    match Tables.all ~run_opts ~opts () with
    | exception Wfs_util.Error.Error e ->
        Printf.eprintf "error: %s\n" (Wfs_util.Error.to_string e);
        exit 2
    | artifact_tables, stats, failures -> (
        let wall_clock_s = Unix.gettimeofday () -. t0 in
        acc_tables := artifact_tables;
        acc_runs := stats.Runs.runs;
        acc_slots := stats.Runs.slots;
        acc_wall := wall_clock_s;
        ran_any := true;
        Printf.printf
          "\n%d runs, %d slots in %.2f s (%.0f slots/s, %d domain(s))\n"
          stats.Runs.runs stats.Runs.slots wall_clock_s
          (if wall_clock_s > 0. then float_of_int stats.Runs.slots /. wall_clock_s
           else 0.)
          jobs;
        match failures with
        | [] -> ()
        | failures ->
            failed := true;
            Printf.printf "\n=== Failed jobs (%d) ===\n" (List.length failures);
            List.iter
              (fun { Runs.key; error } ->
                Printf.printf "  %s\n    %s\n" key
                  (Wfs_util.Error.to_string error))
              failures)
  end;
  if do_macro then begin
    Printf.printf "\n=== Macro-benchmark (horizon=%d slots, seed=%d) ===\n\n"
      macro_horizon !seed;
    (* [wall] is summed inside Perf over the timed Simulator.run calls
       only, so the reported slots/s excludes table/JSON serialization. *)
    let table, runs, slots, wall =
      Perf.macro_table ~horizon:macro_horizon ~seed:!seed ()
    in
    acc_tables := !acc_tables @ [ table ];
    acc_runs := !acc_runs + runs;
    acc_slots := !acc_slots + slots;
    acc_wall := !acc_wall +. wall;
    ran_any := true;
    Printf.printf
      "\n%d macro runs, %d slots in %.2f s run-loop (%.0f slots/s, \
       serialization excluded)\n"
      runs slots wall
      (if wall > 0. then float_of_int slots /. wall else 0.)
  end;
  if do_eventcomp then begin
    Printf.printf
      "\n=== Event-compression macro-benchmark (horizon=%d slots, seed=%d) \
       ===\n\n"
      macro_horizon !seed;
    match Perf.eventcomp_table ~horizon:macro_horizon ~seed:!seed () with
    | exception Wfs_util.Error.Error e ->
        Printf.eprintf "error: %s\n" (Wfs_util.Error.to_string e);
        exit 2
    | table, runs, slots, wall ->
        acc_tables := !acc_tables @ [ table ];
        acc_runs := !acc_runs + runs;
        acc_slots := !acc_slots + slots;
        acc_wall := !acc_wall +. wall;
        ran_any := true;
        Printf.printf
          "\n%d eventcomp runs, %d slots in %.2f s run-loop (%.0f slots/s, \
           serialization excluded)\n"
          runs slots wall
          (if wall > 0. then float_of_int slots /. wall else 0.)
  end;
  if do_topo then begin
    Printf.printf
      "\n=== Topology macro-benchmark (horizon=%d slots, seed=%d, jobs=%d) \
       ===\n\n"
      macro_horizon !seed jobs;
    let table, runs, slots, wall =
      match
        Perf.topo_table ~jobs ~horizon:macro_horizon ~seed:!seed
          ?faults:!topo_faults ()
      with
      | r -> r
      | exception Wfs_util.Error.Error e ->
          Printf.eprintf "error: %s\n" (Wfs_util.Error.to_string e);
          exit 2
    in
    acc_tables := !acc_tables @ [ table ];
    acc_runs := !acc_runs + runs;
    acc_slots := !acc_slots + slots;
    acc_wall := !acc_wall +. wall;
    ran_any := true;
    Printf.printf "\n%d topology runs, %d cell-slots in %.2f s run-loop\n"
      runs slots wall
  end;
  if !write_json && !ran_any then begin
    let artifact =
      Wfs_runner.Artifact.v
        ~horizon:(if do_tables then horizon else macro_horizon)
        ~seed:!seed ~seeds:!seeds ~jobs ~runs:!acc_runs ~slots:!acc_slots
        ~wall_clock_s:!acc_wall ~tables:!acc_tables
    in
    let path =
      match !json_path with
      | Some p -> p
      | None ->
          let tm = Unix.gmtime (Unix.gettimeofday ()) in
          Printf.sprintf "BENCH_%04d%02d%02dT%02d%02d%02dZ.json"
            (tm.Unix.tm_year + 1900) (tm.Unix.tm_mon + 1) tm.Unix.tm_mday
            tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec
    in
    Wfs_runner.Artifact.write ~path artifact;
    Printf.printf "wrote %s\n" path
  end;
  if !profile then begin
    Printf.printf
      "\n=== Profile dashboard (Example 2, SwapA-P, horizon=%d slots) ===\n\n"
      macro_horizon;
    profile_dashboard ~horizon:macro_horizon ~seed:!seed
  end;
  if !failed then exit 3;
  if do_primitives then begin
    Printf.printf "\n=== Fast-path primitives micro-benchmarks ===\n\n";
    Perf.run_primitives ()
  end;
  if do_micro then begin
    Printf.printf "\n=== Micro-benchmarks ===\n\n";
    Perf.run ()
  end
