(** Keyed job graph for the bench: enumerate every simulation up front,
    execute the distinct ones on the domain pool, look results up by key
    while rendering sequentially.  Keys double as the dedup unit — two
    sections that need the same run (same {!Wfs_runner.Spec.t}) pay for it
    once.

    Execution is crash-isolated ({!Wfs_runner.Pool.map_outcomes}): a job
    that raises loses only itself, and its typed error is returned in the
    failure list.  With [resume] set, completed results are checkpointed
    line-by-line to a {!Wfs_runner.Journal} and a rerun over the same
    journal skips the completed keys — final tables are byte-identical to
    an uninterrupted sweep. *)

type result =
  | Metrics of Wfs_core.Metrics.t
  | Mac of Wfs_mac.Mac_sim.result
  | Bounds of Wfs_bounds.Verify.report
  | Fairness of { windows : int; jain : float; gap : float }

type job = {
  key : string;  (** unique id; spec-backed jobs use [Spec.to_string] *)
  slots : int;  (** simulated slots, for engine-throughput accounting *)
  run : unit -> result;  (** must not print; seeds only from captured data *)
}

type opts = {
  jobs : int;  (** worker domains *)
  retries : int;  (** extra attempts per failed job (same RNG stream) *)
  max_slots : int option;
      (** deterministic watchdog: refuse any job declaring more slots *)
  invariants : bool;  (** run {!Wfs_core.Invariant} monitors in every job *)
  flight_recorder : int option;
      (** ring capacity: spec-backed jobs run with an N-event flight
          recorder whose last events ride along in a failed job's error
          context (see {!Wfs_runner.Exec.run_outcome}) *)
  resume : string option;
      (** journal path: created when absent, resumed when present *)
  params : (string * Wfs_util.Json.t) list;
      (** sweep settings stamped into the journal header; a resumed journal
          must carry identical ones *)
}

val default_opts : jobs:int -> opts
(** No retries, no watchdog, no invariants, no journal. *)

type failure = { key : string; error : Wfs_util.Error.t }
type stats = { runs : int; slots : int; cached : int; failed : int }

exception Missing of string
(** Raised by the lookup function for a key that was submitted but whose
    job failed — the render phase catches it to skip just that section. *)

val invariants_enabled : unit -> bool
(** The sweep-wide invariant switch ({!opts.invariants}), as set by the
    current {!exec}.  Job thunks built before [exec] read it at run time;
    custom jobs driving {!Wfs_core.Simulator} directly should forward it
    to [Simulator.config ~invariants]. *)

val flight_recorder_capacity : unit -> int option
(** The sweep-wide flight-recorder capacity ({!opts.flight_recorder}), as
    set by the current {!exec} — same contract as {!invariants_enabled}. *)

val spec_job : Wfs_runner.Spec.t -> job
(** Job keyed by [Spec.to_string] that runs the spec through
    {!Wfs_runner.Exec.run_outcome} (with invariant monitors and the flight
    recorder when enabled); a typed failure is re-raised so the pool's
    crash isolation reports it. *)

val result_to_json : result -> Wfs_util.Json.t

val result_of_json : Wfs_util.Json.t -> result option
(** Bit-exact round-trip: [result_of_json (result_to_json r)] rebuilds a
    result whose rendered cells are byte-identical — the property journal
    resumption relies on. *)

val exec : opts:opts -> job list -> stats * (string -> result) * failure list
(** Dedup by key (first occurrence wins), subtract keys already in the
    resume journal, run the remaining jobs crash-isolated on the pool
    (journaling each completion), and return counts, a lookup function,
    and the per-job failures in submission order.  The lookup raises
    {!Missing} for a failed key and [Invalid_argument] for a key that was
    never submitted.
    @raise Wfs_util.Error.Error (kind [Bad_spec]) when the resume journal
    is corrupt, has the wrong schema, or was written for different sweep
    settings. *)

val metrics : (string -> result) -> string -> Wfs_core.Metrics.t
val mac : (string -> result) -> string -> Wfs_mac.Mac_sim.result
val bounds : (string -> result) -> string -> Wfs_bounds.Verify.report
(** Typed accessors over the lookup function; raise [Invalid_argument] on a
    key of the wrong result kind. *)
