(** Keyed job graph for the bench: enumerate every simulation up front,
    execute the distinct ones on the domain pool, look results up by key
    while rendering sequentially.  Keys double as the dedup unit — two
    sections that need the same run (same {!Wfs_runner.Spec.t}) pay for it
    once. *)

type result =
  | Metrics of Wfs_core.Metrics.t
  | Mac of Wfs_mac.Mac_sim.result
  | Bounds of Wfs_bounds.Verify.report
  | Fairness of { windows : int; jain : float; gap : float }

type job = {
  key : string;  (** unique id; spec-backed jobs use [Spec.to_string] *)
  slots : int;  (** simulated slots, for engine-throughput accounting *)
  run : unit -> result;  (** must not print; seeds only from captured data *)
}

type stats = { runs : int; slots : int }

val spec_job : Wfs_runner.Spec.t -> job
(** Job keyed by [Spec.to_string] that runs the spec through
    {!Wfs_runner.Exec.run}. *)

val exec : jobs:int -> job list -> stats * (string -> result)
(** Dedup by key (first occurrence wins), run the distinct jobs on up to
    [jobs] domains, and return run/slot counts plus a lookup function.
    The lookup raises [Invalid_argument] for a key that was never
    submitted. *)

val metrics : (string -> result) -> string -> Wfs_core.Metrics.t
val mac : (string -> result) -> string -> Wfs_mac.Mac_sim.result
val bounds : (string -> result) -> string -> Wfs_bounds.Verify.report
(** Typed accessors over the lookup function; raise [Invalid_argument] on a
    key of the wrong result kind. *)
