(* The bench's job graph: every measurement the report needs is enumerated
   up front as a keyed, self-contained thunk, executed once on the domain
   pool (duplicate keys — e.g. a Table-1 cell that a later ablation reuses —
   run a single time), and looked up by key during the sequential render
   phase.  Thunks must not print and must derive all randomness from their
   captured seed, so results are independent of worker count and completion
   order.

   Execution is crash-isolated: a job that raises loses only itself — its
   typed error lands in the failure list, its key stays absent from the
   lookup table, and {!Missing} lets the render phase skip just the
   sections that needed it.  With [resume] set, every completed result is
   also journaled as it finishes ({!Wfs_runner.Journal}), and a restarted
   sweep replays the journal instead of re-running those keys. *)

module Core = Wfs_core
module Json = Wfs_util.Json
module Error = Wfs_util.Error
module Journal = Wfs_runner.Journal

type result =
  | Metrics of Core.Metrics.t
  | Mac of Wfs_mac.Mac_sim.result
  | Bounds of Wfs_bounds.Verify.report
  | Fairness of { windows : int; jain : float; gap : float }

type job = {
  key : string;  (* unique id; specs use Spec.to_string *)
  slots : int;  (* simulated slots, for engine-throughput accounting *)
  run : unit -> result;
}

type opts = {
  jobs : int;
  retries : int;
  max_slots : int option;
  invariants : bool;
  flight_recorder : int option;
  resume : string option;
  params : (string * Json.t) list;
      (* sweep settings stamped into the journal header; a resumed journal
         must carry the same ones, or its keys could silently alias runs
         made with different settings *)
}

let default_opts ~jobs =
  {
    jobs;
    retries = 0;
    max_slots = None;
    invariants = false;
    flight_recorder = None;
    resume = None;
    params = [];
  }

type failure = { key : string; error : Error.t }
type stats = { runs : int; slots : int; cached : int; failed : int }

exception Missing of string

(* Invariant checking and the flight recorder are per-sweep switches read
   by the job thunks at run time (they are built before [exec] knows the
   options). *)
let invariants_flag = ref false
let invariants_enabled () = !invariants_flag
let flight_recorder_flag = ref None
let flight_recorder_capacity () = !flight_recorder_flag

let spec_job spec =
  {
    key = Wfs_runner.Spec.to_string spec;
    slots = spec.Wfs_runner.Spec.horizon;
    run =
      (fun () ->
        (* run_outcome rather than run, so a dying job's error context
           carries the flight recorder's last events; re-raising keeps the
           pool's crash-isolation contract unchanged. *)
        match
          Wfs_runner.Exec.run_outcome ~invariants:(invariants_enabled ())
            ?flight_recorder:(flight_recorder_capacity ()) spec
        with
        | Ok m -> Metrics m
        | Error e -> Error.raise_ e);
  }

(* --- journal payloads --- *)

let result_to_json = function
  | Metrics m ->
      Json.Obj [ ("kind", Json.Str "metrics"); ("data", Core.Metrics.to_json m) ]
  | Mac r ->
      Json.Obj
        [ ("kind", Json.Str "mac"); ("data", Wfs_mac.Mac_sim.result_to_json r) ]
  | Bounds r ->
      Json.Obj
        [
          ("kind", Json.Str "bounds");
          ("data", Wfs_bounds.Verify.report_to_json r);
        ]
  | Fairness { windows; jain; gap } ->
      Json.Obj
        [
          ("kind", Json.Str "fairness");
          ("windows", Json.Int windows);
          ("jain", Json.of_float_ext jain);
          ("gap", Json.of_float_ext gap);
        ]

let result_of_json j =
  let ( let* ) = Option.bind in
  let* kind = Option.bind (Json.member "kind" j) Json.to_str in
  match kind with
  | "metrics" ->
      let* data = Json.member "data" j in
      Option.map (fun m -> Metrics m) (Core.Metrics.of_json data)
  | "mac" ->
      let* data = Json.member "data" j in
      Option.map (fun r -> Mac r) (Wfs_mac.Mac_sim.result_of_json data)
  | "bounds" ->
      let* data = Json.member "data" j in
      Option.map (fun r -> Bounds r) (Wfs_bounds.Verify.report_of_json data)
  | "fairness" ->
      let* windows = Option.bind (Json.member "windows" j) Json.to_int in
      let* jain = Option.bind (Json.member "jain" j) Json.to_float_ext in
      let* gap = Option.bind (Json.member "gap" j) Json.to_float_ext in
      Some (Fairness { windows; jain; gap })
  | _ -> None

(* --- resume --- *)

let params_equal a b =
  let norm l =
    List.sort (fun (k, _) (k', _) -> String.compare k k') l
    |> List.map (fun (k, v) -> (k, Json.to_string ~pretty:false v))
  in
  List.equal (fun (k, v) (k', v') -> String.equal k k' && String.equal v v')
    (norm a) (norm b)

(* Load a journal into [cached] and return an append-mode writer; create a
   fresh journal when the file does not exist yet.  An unusable journal
   (corrupt, wrong schema, different sweep settings) raises the typed
   error — resuming over it could resurrect results from another sweep. *)
let open_journal ~params ~cached path =
  if Sys.file_exists path then begin
    match Journal.load ~path () with
    | Error e -> Error.raise_ e
    | Ok { params = found; entries } ->
        if not (params_equal found params) then
          Error.bad_spec ~who:"Runs.exec"
            "journal was written for different sweep settings"
            ~context:
              [
                ("path", path);
                ( "journal",
                  Json.to_string ~pretty:false (Json.Obj found) );
                ( "sweep",
                  Json.to_string ~pretty:false (Json.Obj params) );
              ];
        List.iter
          (fun (key, v) ->
            match result_of_json v with
            | Some r -> Hashtbl.replace cached key r
            | None ->
                Error.bad_spec ~who:"Runs.exec" "unreadable journal entry"
                  ~context:[ ("path", path); ("key", key) ])
          entries;
        Journal.reopen ~path
  end
  else Journal.create ~path ~params ()

let exec ~opts job_list =
  invariants_flag := opts.invariants;
  flight_recorder_flag := opts.flight_recorder;
  (* Dedup by key, keeping first occurrence order. *)
  let seen = Hashtbl.create 256 in
  let distinct =
    List.filter
      (fun (j : job) ->
        if Hashtbl.mem seen j.key then false
        else begin
          Hashtbl.add seen j.key ();
          true
        end)
      job_list
  in
  let cached = Hashtbl.create 256 in
  let writer =
    Option.map (open_journal ~params:opts.params ~cached) opts.resume
  in
  let pending : job array =
    Array.of_list
      (List.filter (fun (j : job) -> not (Hashtbl.mem cached j.key)) distinct)
  in
  if Hashtbl.length cached = 0 then
    Printf.printf "running %d simulations on %d domain(s)...\n%!"
      (Array.length pending) (max 1 opts.jobs)
  else
    Printf.printf
      "running %d simulations on %d domain(s) (%d resumed from journal)...\n%!"
      (Array.length pending) (max 1 opts.jobs) (Hashtbl.length cached);
  let notify =
    Option.map
      (fun w i outcome ->
        match outcome with
        | Ok r -> Journal.append w ~key:pending.(i).key ~value:(result_to_json r)
        | Error _ -> ())
      writer
  in
  let outcomes =
    Wfs_runner.Pool.map_outcomes ~jobs:opts.jobs ~retries:opts.retries ?notify
      (fun (j : job) ->
        match opts.max_slots with
        | Some cap when j.slots > cap ->
            (* Deterministic watchdog: the slot loop is horizon-bounded, so
               a job's cost is declared up front and over-budget jobs are
               refused before they run. *)
            Error
              (Error.v Error.Sim_fault ~who:"Runs.exec" "slot budget exceeded"
                 ~context:
                   [
                     ("key", j.key);
                     ("slots", string_of_int j.slots);
                     ("max_slots", string_of_int cap);
                   ])
        | _ -> Ok (j.run ()))
      pending
  in
  Option.iter Journal.close writer;
  let table = Hashtbl.create 256 in
  Hashtbl.iter (fun k r -> Hashtbl.replace table k r) cached;
  let failures = ref [] in
  Array.iteri
    (fun i (j : job) ->
      match outcomes.(i) with
      | Ok r -> Hashtbl.replace table j.key r
      | Error error -> failures := { key = j.key; error } :: !failures)
    pending;
  let failures = List.rev !failures in
  let stats =
    {
      runs = Array.length pending;
      slots = Array.fold_left (fun acc (j : job) -> acc + j.slots) 0 pending;
      cached = Hashtbl.length cached;
      failed = List.length failures;
    }
  in
  let get key =
    match Hashtbl.find_opt table key with
    | Some r -> r
    | None ->
        if Hashtbl.mem seen key then raise (Missing key)
        else Error.invalidf "Runs.exec" "no job with key %S" key
  in
  (stats, get, failures)

let metrics get key =
  match get key with
  | Metrics m -> m
  | _ -> Error.invalidf "Runs.metrics" "job %S did not produce metrics" key

let mac get key =
  match get key with
  | Mac r -> r
  | _ -> Error.invalidf "Runs.mac" "job %S did not produce a MAC result" key

let bounds get key =
  match get key with
  | Bounds r -> r
  | _ ->
      Error.invalidf "Runs.bounds" "job %S did not produce a bounds report" key
