(* The bench's job graph: every measurement the report needs is enumerated
   up front as a keyed, self-contained thunk, executed once on the domain
   pool (duplicate keys — e.g. a Table-1 cell that a later ablation reuses —
   run a single time), and looked up by key during the sequential render
   phase.  Thunks must not print and must derive all randomness from their
   captured seed, so results are independent of worker count and completion
   order. *)

module Core = Wfs_core

type result =
  | Metrics of Core.Metrics.t
  | Mac of Wfs_mac.Mac_sim.result
  | Bounds of Wfs_bounds.Verify.report
  | Fairness of { windows : int; jain : float; gap : float }

type job = {
  key : string;  (* unique id; specs use Spec.to_string *)
  slots : int;  (* simulated slots, for engine-throughput accounting *)
  run : unit -> result;
}

type stats = { runs : int; slots : int }

let spec_job spec =
  {
    key = Wfs_runner.Spec.to_string spec;
    slots = spec.Wfs_runner.Spec.horizon;
    run = (fun () -> Metrics (Wfs_runner.Exec.run spec));
  }

let exec ~jobs job_list =
  (* Dedup by key, keeping first occurrence order. *)
  let seen = Hashtbl.create 256 in
  let distinct =
    List.filter
      (fun j ->
        if Hashtbl.mem seen j.key then false
        else begin
          Hashtbl.add seen j.key ();
          true
        end)
      job_list
  in
  let arr = Array.of_list distinct in
  Printf.printf "running %d simulations on %d domain(s)...\n%!"
    (Array.length arr) (max 1 jobs);
  let results = Wfs_runner.Pool.map ~jobs (fun j -> j.run ()) arr in
  let table = Hashtbl.create 256 in
  Array.iteri (fun i j -> Hashtbl.replace table j.key results.(i)) arr;
  let stats =
    {
      runs = Array.length arr;
      slots = Array.fold_left (fun acc (j : job) -> acc + j.slots) 0 arr;
    }
  in
  let get key =
    match Hashtbl.find_opt table key with
    | Some r -> r
    | None -> invalid_arg (Printf.sprintf "Runs.exec: no job with key %S" key)
  in
  (stats, get)

let metrics get key =
  match get key with
  | Metrics m -> m
  | _ -> invalid_arg (Printf.sprintf "job %S did not produce metrics" key)

let mac get key =
  match get key with
  | Mac r -> r
  | _ -> invalid_arg (Printf.sprintf "job %S did not produce a MAC result" key)

let bounds get key =
  match get key with
  | Bounds r -> r
  | _ -> invalid_arg (Printf.sprintf "job %S did not produce a bounds report" key)
