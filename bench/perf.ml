(* Bechamel micro-benchmarks: per-operation cost of the scheduler decision
   paths and the supporting data structures.  One Test.make per measured
   operation; results print as ns/op. *)

open Bechamel
open Toolkit
module Core = Wfs_core

(* A steady-state WPS cell stepped one slot per run. *)
let wps_step_test ~name ~params ~n_flows =
  let flows =
    Array.init n_flows (fun id -> Core.Params.flow ~id ~weight:1. ())
  in
  let wps = Core.Wps.create ~params flows in
  let sched = Core.Wps.instance wps in
  let rng = Wfs_util.Rng.create 7 in
  let slot = ref 0 in
  let seq = ref 0 in
  Test.make ~name
    (Staged.stage (fun () ->
         let s = !slot in
         incr slot;
         (* Keep roughly one arrival per slot so queues stay small. *)
         let flow = Wfs_util.Rng.int rng n_flows in
         sched.enqueue ~slot:s
           (Wfs_traffic.Packet.make ~flow ~seq:!seq ~arrival:s ());
         incr seq;
         let predicted_good f = (f + s) mod 7 <> 0 in
         (match sched.select ~slot:s ~predicted_good with
         | Some f -> sched.complete ~flow:f
         | None -> ());
         sched.on_slot_end ~slot:s))

let iwfq_step_test ~n_flows =
  let flows =
    Array.init n_flows (fun id -> Core.Params.flow ~id ~weight:1. ())
  in
  let iwfq = Core.Iwfq.create flows in
  let sched = Core.Iwfq.instance iwfq in
  let rng = Wfs_util.Rng.create 8 in
  let slot = ref 0 in
  let seq = ref 0 in
  Test.make ~name:(Printf.sprintf "iwfq-slot-%dflows" n_flows)
    (Staged.stage (fun () ->
         let s = !slot in
         incr slot;
         let flow = Wfs_util.Rng.int rng n_flows in
         sched.enqueue ~slot:s
           (Wfs_traffic.Packet.make ~flow ~seq:!seq ~arrival:s ());
         incr seq;
         let predicted_good f = (f + s) mod 7 <> 0 in
         (match sched.select ~slot:s ~predicted_good with
         | Some f -> sched.complete ~flow:f
         | None -> ());
         sched.on_slot_end ~slot:s))

let spreading_test ~n_flows =
  let weights = Array.init n_flows (fun i -> 1 + (i mod 3)) in
  Test.make ~name:(Printf.sprintf "spreading-frame-%dflows" n_flows)
    (Staged.stage (fun () -> ignore (Core.Spreading.frame ~weights)))

let gps_test () =
  let flows = Wfs_wireline.Flow.equal_weights 8 in
  let gps = Wfs_wireline.Gps.create ~capacity:1. flows in
  let rng = Wfs_util.Rng.create 9 in
  let t = ref 0. in
  Test.make ~name:"gps-arrive+advance"
    (Staged.stage (fun () ->
         t := !t +. 0.2;
         ignore
           (Wfs_wireline.Gps.arrive gps ~time:!t ~flow:(Wfs_util.Rng.int rng 8)
              ~size:1.)))

let heap_test () =
  let h = Wfs_util.Heap.create ~leq:(fun (a : float) b -> a <= b) () in
  let rng = Wfs_util.Rng.create 10 in
  for _ = 1 to 1000 do
    Wfs_util.Heap.push h (Wfs_util.Rng.float rng)
  done;
  Test.make ~name:"heap-push+pop@1000"
    (Staged.stage (fun () ->
         Wfs_util.Heap.push h (Wfs_util.Rng.float rng);
         ignore (Wfs_util.Heap.pop h)))

let channel_test () =
  let ch =
    Wfs_channel.Gilbert_elliott.create ~rng:(Wfs_util.Rng.create 11) ~pg:0.07
      ~pe:0.03 ()
  in
  let slot = ref 0 in
  Test.make ~name:"gilbert-elliott-advance"
    (Staged.stage (fun () ->
         ignore (Wfs_channel.Channel.advance ch ~slot:!slot);
         incr slot))

(* --- Fast-path primitives (bench --micro) ---------------------------------

   The three data-structure operations the event-compressed engine leans
   on: tag-ordered selection (Flow_heap.min_accept), cyclic round-robin
   restart (Flow_set.find_from), and the arrival calendar's push/pop.  A
   macro regression with these numbers flat points at the skip logic; a
   regression here localizes below the macro number. *)

let flow_heap_min_accept_test ~n =
  let h = Wfs_util.Flow_heap.create ~n in
  for f = 0 to n - 1 do
    Wfs_util.Flow_heap.set h ~flow:f ~tag:(float_of_int ((f * 37) mod n))
  done;
  let turn = ref 0 in
  Test.make ~name:(Printf.sprintf "flow-heap-min-accept@%d" n)
    (Staged.stage (fun () ->
         let c = !turn in
         incr turn;
         (* Reject a rotating ~1/7 of flows so the scan does real work. *)
         ignore
           (Wfs_util.Flow_heap.min_accept h ~accept:(fun f ->
                (f + c) mod 7 <> 0))))

let flow_set_find_from_test ~n =
  let s = Wfs_util.Flow_set.create ~n in
  let f = ref 0 in
  (* Sparse membership (every third id): the few-active-among-many shape
     the index targets. *)
  while !f < n do
    Wfs_util.Flow_set.add s !f;
    f := !f + 3
  done;
  let from = ref 0 in
  Test.make ~name:(Printf.sprintf "flow-set-find-from@%d" n)
    (Staged.stage (fun () ->
         let c = !from in
         from := (c + 7) mod n;
         ignore (Wfs_util.Flow_set.find_from s c)))

let event_cal_test ~n =
  let cal = Wfs_util.Event_cal.create ~n in
  let rng = Wfs_util.Rng.create 12 in
  let next = ref 0 in
  for id = 0 to n - 1 do
    Wfs_util.Event_cal.push cal ~key:(Wfs_util.Rng.int rng 10_000) ~id;
    next := 10_000
  done;
  Test.make ~name:(Printf.sprintf "event-cal-push+pop@%d" n)
    (Staged.stage (fun () ->
         let id = Wfs_util.Event_cal.pop cal in
         (* Re-push at a strictly later slot, as the requery loop does. *)
         incr next;
         Wfs_util.Event_cal.push cal ~key:!next ~id))

let primitive_tests () =
  [
    flow_heap_min_accept_test ~n:256;
    flow_set_find_from_test ~n:256;
    event_cal_test ~n:256;
  ]

let all_tests () =
  [
    wps_step_test ~name:"wps-swapa-slot-2flows" ~params:(Core.Params.swapa ())
      ~n_flows:2;
    wps_step_test ~name:"wps-swapa-slot-16flows" ~params:(Core.Params.swapa ())
      ~n_flows:16;
    wps_step_test ~name:"wps-wrr-slot-16flows" ~params:Core.Params.wrr
      ~n_flows:16;
    iwfq_step_test ~n_flows:2;
    iwfq_step_test ~n_flows:16;
    spreading_test ~n_flows:16;
    spreading_test ~n_flows:64;
    gps_test ();
    heap_test ();
    channel_test ();
  ]
  @ primitive_tests ()

(* --- End-to-end macro-benchmark ------------------------------------------

   Full [Simulator.run] per registry scheduler at 2/16/64/256 total flows
   with at most [macro_active_cap] of them active.  The inactive flows are
   provisioned but silent ([Arrival.never] sources on error-free channels):
   the shape the backlog-indexed selection paths are built for, and the
   regime where naive O(n_flows)-per-slot scans hurt most.  Active flows
   carry Poisson traffic at 0.9 aggregate load over independent bursty
   Gilbert-Elliott channels, all seeded from the base seed only, so every
   scheduler faces the same arrival and error sample paths (common random
   numbers) and the delivered-packet column is a determinism witness.
   Wall-clock is measured here, in the bench binary (lint rule R1 keeps
   clocks out of lib/). *)

let macro_sizes = [ 2; 16; 64; 256 ]
let macro_active_cap = 8
let macro_load = 0.9

let macro_setup ?(load = macro_load) ?(active_cap = macro_active_cap)
    ~n_flows ~seed () : Core.Simulator.flow_setup array =
  let active = min n_flows active_cap in
  let rate = load /. float_of_int active in
  Array.init n_flows (fun id ->
      let flow =
        Core.Params.flow ~id ~weight:1. ~drop:(Core.Params.Retx_limit 3) ()
      in
      if id < active then
        let src_rng = Wfs_util.Rng.create (seed + (1000 * id) + 1) in
        let ch_rng = Wfs_util.Rng.create (seed + (1000 * id) + 2) in
        {
          Core.Simulator.flow;
          source = Wfs_traffic.Poisson.create ~rng:src_rng ~rate;
          channel =
            Wfs_channel.Gilbert_elliott.of_burstiness ~rng:ch_rng
              ~good_prob:0.9 ~sum:0.1 ();
        }
      else
        {
          Core.Simulator.flow;
          source = Wfs_traffic.Arrival.never ();
          channel = Wfs_channel.Error_free.create ();
        })

(* One timed run; returns (delivered packets, wall seconds).  Only the
   [Simulator.run] call is inside the clock — setup, table rendering and
   JSON serialization never contaminate the slots/s columns. *)
let macro_run ?(load = macro_load) ?(active_cap = macro_active_cap)
    ?(fast_path = false) ?skip_stats ~horizon ~seed
    (entry : Core.Registry.entry) ~n_flows () =
  let setups = macro_setup ~load ~active_cap ~n_flows ~seed () in
  let params = Array.map (fun fs -> fs.Core.Simulator.flow) setups in
  let sched = entry.Core.Registry.make params in
  let cfg =
    Core.Simulator.config ~predictor:entry.Core.Registry.predictor ~fast_path
      ?skip_stats ~horizon setups
  in
  let t0 = Unix.gettimeofday () in
  let metrics = Core.Simulator.run cfg sched in
  let dt = Unix.gettimeofday () -. t0 in
  let delivered = ref 0 in
  for f = 0 to n_flows - 1 do
    delivered := !delivered + Core.Metrics.delivered metrics ~flow:f
  done;
  (!delivered, dt)

let macro_columns =
  [ "scheduler"; "flows"; "active"; "slots"; "delivered"; "wall_s"; "slots/s" ]

(* Runs the macro-benchmark over every registry scheduler, prints the table
   and returns it as an artifact table plus (runs, slots, run-loop wall)
   totals for the BENCH_*.json accounting — the wall total sums only the
   timed [Simulator.run] calls, never serialization. *)
let macro_table ~horizon ~seed () =
  let title = "Macro-benchmark (end-to-end slots/s, <=8 active flows)" in
  let table = Wfs_util.Tablefmt.create ~title ~columns:macro_columns in
  let rows = ref [] in
  let runs = ref 0 in
  let slots = ref 0 in
  let wall = ref 0. in
  List.iter
    (fun name ->
      let entry = Core.Registry.get name in
      List.iter
        (fun n_flows ->
          let delivered, dt = macro_run ~horizon ~seed entry ~n_flows () in
          incr runs;
          slots := !slots + horizon;
          wall := !wall +. dt;
          let row =
            [
              name;
              string_of_int n_flows;
              string_of_int (min n_flows macro_active_cap);
              string_of_int horizon;
              string_of_int delivered;
              Printf.sprintf "%.3f" dt;
              Printf.sprintf "%.0f" (float_of_int horizon /. dt);
            ]
          in
          rows := row :: !rows;
          Wfs_util.Tablefmt.add_row table row)
        macro_sizes)
    (Core.Registry.names ());
  Wfs_util.Tablefmt.print table;
  let artifact_table =
    { Wfs_runner.Artifact.title; columns = macro_columns; rows = List.rev !rows }
  in
  (artifact_table, !runs, !slots, !wall)

(* --- Event-compression macro-benchmark ------------------------------------

   The fast-path acceptance table: the four paper schedulers (one
   registry representative each) at every macro size, swept over
   activity tiers — the bursty 0.9-load/8-active macro shape, a
   low-load 0.05/8-active tier, and a sparse 0.05/2-active tier — with
   the event-compressed engine off and on.  Each (scheduler, flows,
   tier) pair runs the reference loop first and the fast path second on
   identical seeds; the delivered column must match exactly
   (byte-identity witness — the run aborts on a mismatch) and the
   speedup column is the wall ratio.  Low activity is where compression
   pays: almost every slot is quiescent, so the fast path collapses
   whole inter-arrival gaps into closed-form updates, and the per-slot
   floor shrinks to the live RNG streams (byte-identity pins one draw
   per dynamic channel and live source per slot). *)

let eventcomp_tiers = [ (0.9, 8); (0.05, 8); (0.05, 2) ]
let eventcomp_schedulers = [ "SwapA-P"; "IWFQ-P"; "CIF-Q-P"; "CSDPS" ]

let eventcomp_columns =
  [
    "scheduler"; "flows"; "active"; "load"; "fast"; "slots"; "delivered";
    "wall_s"; "slots/s"; "speedup"; "skipped"; "quiesce";
  ]

let eventcomp_table ~horizon ~seed () =
  let title =
    "Event-compression macro-benchmark (fast path off/on, run loop only)"
  in
  let table = Wfs_util.Tablefmt.create ~title ~columns:eventcomp_columns in
  let rows = ref [] in
  let runs = ref 0 in
  let slots = ref 0 in
  let wall = ref 0. in
  (* Skip-telemetry overhead accounting: the third (untimed-for-artifact)
     fast run per pair repeats the fast run with a Skip_stats collector
     attached, so the skipped/quiesce columns are measured, never
     inferred.  Its wall clock is compared against the bare fast run's in
     aggregate — the number PERF.md quotes as the collector's cost. *)
  let wall_fast = ref 0. in
  let wall_skip = ref 0. in
  List.iter
    (fun name ->
      let entry = Core.Registry.get name in
      List.iter
        (fun (load, active_cap) ->
          List.iter
            (fun n_flows ->
              let d_ref, dt_ref =
                macro_run ~load ~active_cap ~fast_path:false ~horizon ~seed
                  entry ~n_flows ()
              in
              let d_fast, dt_fast =
                macro_run ~load ~active_cap ~fast_path:true ~horizon ~seed
                  entry ~n_flows ()
              in
              if d_fast <> d_ref then
                Wfs_util.Error.invalidf "Perf.eventcomp_table"
                  "fast path diverged: %s flows=%d load=%.2f delivered %d \
                   (reference %d)"
                  name n_flows load d_fast d_ref;
              let skip = Core.Skip_stats.create () in
              let d_skip, dt_skip =
                macro_run ~load ~active_cap ~fast_path:true ~skip_stats:skip
                  ~horizon ~seed entry ~n_flows ()
              in
              if d_skip <> d_fast then
                Wfs_util.Error.invalidf "Perf.eventcomp_table"
                  "skip telemetry perturbed the fast path: %s flows=%d \
                   load=%.2f delivered %d (bare fast %d)"
                  name n_flows load d_skip d_fast;
              if not (Core.Skip_stats.compressed skip) then
                Wfs_util.Error.invalidf "Perf.eventcomp_table"
                  "skip telemetry degenerated the fast path: %s flows=%d \
                   load=%.2f ran %d reference slots"
                  name n_flows load
                  (Core.Skip_stats.reference_slots skip);
              (* Only the reference/fast pair counts toward the artifact's
                 runs/slots/wall totals, keeping the timed sections
                 comparable with earlier baselines. *)
              runs := !runs + 2;
              slots := !slots + (2 * horizon);
              wall := !wall +. dt_ref +. dt_fast;
              wall_fast := !wall_fast +. dt_fast;
              wall_skip := !wall_skip +. dt_skip;
              let row ~fast ~delivered ~dt ~speedup ~skipped ~quiesce =
                [
                  name;
                  string_of_int n_flows;
                  string_of_int (min n_flows active_cap);
                  Printf.sprintf "%.2f" load;
                  (if fast then "on" else "off");
                  string_of_int horizon;
                  string_of_int delivered;
                  Printf.sprintf "%.4f" dt;
                  Printf.sprintf "%.0f" (float_of_int horizon /. dt);
                  speedup;
                  skipped;
                  quiesce;
                ]
              in
              let r1 =
                row ~fast:false ~delivered:d_ref ~dt:dt_ref ~speedup:"-"
                  ~skipped:"-" ~quiesce:"-"
              and r2 =
                row ~fast:true ~delivered:d_fast ~dt:dt_fast
                  ~speedup:(Printf.sprintf "%.2fx" (dt_ref /. dt_fast))
                  ~skipped:(string_of_int (Core.Skip_stats.absorbed_slots skip))
                  ~quiesce:
                    (Printf.sprintf "%.4f"
                       (Core.Skip_stats.quiescence_ratio skip))
              in
              rows := r2 :: r1 :: !rows;
              Wfs_util.Tablefmt.add_row table r1;
              Wfs_util.Tablefmt.add_row table r2)
            macro_sizes)
        eventcomp_tiers)
    eventcomp_schedulers;
  Wfs_util.Tablefmt.print table;
  Printf.printf
    "skip-telemetry overhead: fast %.4fs vs fast+skip %.4fs (%+.1f%%)\n"
    !wall_fast !wall_skip
    (100. *. ((!wall_skip /. !wall_fast) -. 1.));
  let artifact_table =
    {
      Wfs_runner.Artifact.title;
      columns = eventcomp_columns;
      rows = List.rev !rows;
    }
  in
  (artifact_table, !runs, !slots, !wall)

(* --- Topology macro-benchmark --------------------------------------------

   Full Wfs_topo.Topology run: [topo_cells] cells each instantiating the
   4-flow bench scenario (256 flows at 64 cells), advancing in lockstep
   epochs sharded over [jobs] domains, with handoffs at every barrier.
   Exercises the whole dissolve/rebuild path end to end; the
   delivered/handoffs columns are determinism witnesses (jobs-invariant),
   wall-clock is the sharding measure.  Only the carry-capable schedulers
   run — that is the path being benchmarked. *)

let topo_cells = 64
let topo_scenario = "bench/topo_cell.scenario"
let topo_mobility = 0.02
let topo_schedulers = [ "SwapA-P"; "CIF-Q-P" ]

let topo_columns =
  [
    "scheduler"; "cells"; "flows"; "epoch"; "mobility"; "slots"; "delivered";
    "handoffs"; "wall_s"; "slots/s";
  ]

let topo_table ~jobs ~horizon ~seed ?faults () =
  let faulted =
    match faults with
    | Some plan -> Wfs_runner.Spec.faults_active plan
    | None -> false
  in
  let title =
    if faulted then
      Printf.sprintf
        "Topology macro-benchmark (%d cells, lockstep epochs, fault plan)"
        topo_cells
    else
      Printf.sprintf "Topology macro-benchmark (%d cells, lockstep epochs)"
        topo_cells
  in
  let columns =
    if faulted then topo_columns @ [ "crashes"; "rehomed" ] else topo_columns
  in
  let table = Wfs_util.Tablefmt.create ~title ~columns in
  let epoch = max 1 (horizon / 20) in
  let rows = ref [] in
  let runs = ref 0 in
  let slots = ref 0 in
  let wall = ref 0. in
  List.iter
    (fun sched ->
      let topo_clause =
        Wfs_runner.Spec.topo ~cells:topo_cells ~mobility:topo_mobility ~epoch
      in
      let topo_clause =
        if faulted then
          Wfs_runner.Spec.with_faults (Option.get faults) topo_clause
        else topo_clause
      in
      let spec =
        Wfs_runner.Spec.make ~seed ~horizon ~sched ~topo:topo_clause
          (Wfs_runner.Spec.file topo_scenario)
      in
      let t = Wfs_topo.Topology.of_spec spec in
      let t0 = Unix.gettimeofday () in
      Wfs_topo.Topology.run ~jobs t;
      let dt = Unix.gettimeofday () -. t0 in
      let m = Wfs_topo.Topology.metrics t in
      let delivered = ref 0 in
      for f = 0 to Wfs_topo.Topology.n_flows t - 1 do
        delivered := !delivered + Core.Metrics.delivered m ~flow:f
      done;
      let cell_slots = horizon * topo_cells in
      incr runs;
      slots := !slots + cell_slots;
      wall := !wall +. dt;
      let row =
        [
          sched;
          string_of_int topo_cells;
          string_of_int (Wfs_topo.Topology.n_flows t);
          string_of_int epoch;
          Printf.sprintf "%.3f" topo_mobility;
          string_of_int cell_slots;
          string_of_int !delivered;
          string_of_int (Wfs_topo.Topology.handoffs t);
          Printf.sprintf "%.3f" dt;
          Printf.sprintf "%.0f" (float_of_int cell_slots /. dt);
        ]
      in
      let row =
        match Wfs_topo.Topology.chaos_instruments t with
        | Some reg ->
            (* Read-only lookup through the registry's JSON view —
               [Instruments.counter] registers and refuses duplicates. *)
            let counts =
              match Wfs_obs.Instruments.to_json reg with
              | Wfs_util.Json.Obj fields -> (
                  match List.assoc_opt "instruments" fields with
                  | Some (Wfs_util.Json.Arr items) ->
                      List.filter_map
                        (function
                          | Wfs_util.Json.Obj f -> (
                              match
                                ( List.assoc_opt "name" f,
                                  List.assoc_opt "count" f )
                              with
                              | Some (Wfs_util.Json.Str n), Some (Wfs_util.Json.Int c)
                                -> Some (n, c)
                              | _ -> None)
                          | _ -> None)
                        items
                  | _ -> [])
              | _ -> []
            in
            let count name =
              string_of_int (Option.value ~default:0 (List.assoc_opt name counts))
            in
            row @ [ count "chaos.crashes"; count "chaos.rehomed" ]
        | None -> row
      in
      rows := row :: !rows;
      Wfs_util.Tablefmt.add_row table row)
    topo_schedulers;
  Wfs_util.Tablefmt.print table;
  let artifact_table =
    { Wfs_runner.Artifact.title; columns; rows = List.rev !rows }
  in
  (artifact_table, !runs, !slots, !wall)

let run_tests ~title tests =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:(Some 10) ()
  in
  let table =
    Wfs_util.Tablefmt.create ~title ~columns:[ "operation"; "ns/op" ]
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let analyzed = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          let ns =
            match Analyze.OLS.estimates ols_result with
            | Some [ x ] -> x
            | Some _ | None -> nan
          in
          Wfs_util.Tablefmt.add_row table
            [ name; Wfs_util.Tablefmt.cell_of_float ns ])
        analyzed)
    tests;
  Wfs_util.Tablefmt.print table

let run () =
  run_tests ~title:"Micro-benchmarks (per-operation cost)" (all_tests ())

let run_primitives () =
  run_tests ~title:"Fast-path primitives (per-operation cost)"
    (primitive_tests ())
