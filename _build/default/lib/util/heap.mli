(** Imperative binary min-heap.

    Used as the priority queue of the discrete-event calendar and for
    tag-ordered selection in the fair-queueing schedulers.  Ordering is
    supplied at creation; ties are broken by insertion order so that
    schedulers have deterministic, FIFO-stable behaviour. *)

type 'a t

val create : ?initial_capacity:int -> leq:('a -> 'a -> bool) -> unit -> 'a t
(** [create ~leq ()] makes an empty heap ordered by [leq] (a total preorder:
    [leq a b] means [a] may be served before [b]).  Elements comparing equal
    are popped in insertion order. *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
(** Minimum element without removing it. *)

val pop : 'a t -> 'a option
(** Remove and return the minimum element. *)

val pop_exn : 'a t -> 'a
(** @raise Invalid_argument on an empty heap. *)

val clear : 'a t -> unit

val to_list : 'a t -> 'a list
(** Snapshot of the contents in unspecified order. *)

val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
(** Fold over contents in unspecified order. *)
