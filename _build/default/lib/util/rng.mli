(** Deterministic pseudo-random number generation for simulations.

    Every stochastic component of the simulator (arrival processes, channel
    models, contention back-off) owns its own [Rng.t] stream, derived from a
    master seed by {!split}.  This makes experiments reproducible and lets a
    single component be re-run in isolation with an identical sample path. *)

type t
(** A self-contained PRNG stream (xoshiro256**, seeded via splitmix64). *)

val create : int -> t
(** [create seed] makes a fresh stream from an integer seed.  Streams created
    from distinct seeds are statistically independent for simulation
    purposes. *)

val split : t -> t
(** [split rng] derives a new independent stream from [rng], advancing
    [rng].  Used to give each flow/channel its own stream from one master. *)

val copy : t -> t
(** [copy rng] duplicates the current state, yielding a stream that will
    produce the same future draws as [rng]. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float
(** [float rng] draws uniformly from [\[0,1)] with 53-bit resolution. *)

val int : t -> int -> int
(** [int rng n] draws uniformly from [0 .. n-1].  [n] must be positive. *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> float -> bool
(** [bernoulli rng p] is [true] with probability [p]. *)

val exponential : t -> rate:float -> float
(** [exponential rng ~rate] draws from Exp(rate); mean [1/rate].
    [rate] must be positive. *)

val poisson : t -> mean:float -> int
(** [poisson rng ~mean] draws a Poisson variate.  Uses inversion for small
    means and normal approximation fallback above 500 to stay O(mean). *)

val geometric : t -> p:float -> int
(** [geometric rng ~p] is the number of failures before the first success in
    Bernoulli(p) trials (support 0, 1, 2, ...).  [p] must be in (0,1]. *)

val uniform : t -> lo:float -> hi:float -> float
(** Uniform draw from [\[lo, hi)]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
