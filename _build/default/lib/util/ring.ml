type 'a t = {
  mutable data : 'a array;
  mutable pos : int;  (* index of the element under the marker; -1 = fresh *)
}

let create items = { data = Array.copy items; pos = -1 }

let length t = Array.length t.data
let is_empty t = Array.length t.data = 0
let items t = Array.copy t.data

let marker t =
  if t.pos < 0 || t.pos >= Array.length t.data then None else Some t.data.(t.pos)

let next t =
  let n = Array.length t.data in
  if n = 0 then None
  else begin
    t.pos <- (t.pos + 1) mod n;
    Some t.data.(t.pos)
  end

let next_matching t p =
  let n = Array.length t.data in
  if n = 0 then None
  else begin
    let start = t.pos in
    let rec scan tried =
      if tried >= n then begin
        t.pos <- start;
        None
      end
      else begin
        let candidate = (if t.pos < 0 then 0 else (t.pos + 1) mod n) in
        t.pos <- candidate;
        if p t.data.(candidate) then Some t.data.(candidate) else scan (tried + 1)
      end
    in
    scan 0
  end

let rebuild t items =
  t.data <- Array.copy items;
  t.pos <- -1
