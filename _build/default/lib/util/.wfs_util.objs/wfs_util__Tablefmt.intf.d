lib/util/tablefmt.mli:
