lib/util/ring.mli:
