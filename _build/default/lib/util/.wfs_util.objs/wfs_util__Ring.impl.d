lib/util/ring.ml: Array
