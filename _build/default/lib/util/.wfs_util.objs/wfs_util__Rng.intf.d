lib/util/rng.mli:
