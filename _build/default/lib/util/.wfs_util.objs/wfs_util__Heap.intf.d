lib/util/heap.mli:
