lib/util/stats.mli:
