(** Circular sequence with a persistent marker.

    WPS keeps a weighted round-robin ring (WF²Q-spread) of the known
    backlogged flows; a marker remembers the last position used for
    cross-frame slot swapping, so repeated swaps rotate through flows rather
    than always penalising the same one (Section 7 of the paper). *)

type 'a t

val create : 'a array -> 'a t
(** [create items] builds a ring over a copy of [items]; the marker starts
    just before the first element.  The ring may be empty. *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val items : 'a t -> 'a array
(** Copy of the contents in ring order starting at index 0. *)

val marker : 'a t -> 'a option
(** Element currently under the marker, or [None] for an empty ring or a
    marker that has not advanced yet. *)

val next : 'a t -> 'a option
(** Advance the marker one position (cyclically) and return the element. *)

val next_matching : 'a t -> ('a -> bool) -> 'a option
(** [next_matching t p] advances the marker until an element satisfying [p]
    is found, visiting each element at most once; [None] if no element
    matches (marker returns to its original position in that case). *)

val rebuild : 'a t -> 'a array -> unit
(** Replace the contents, resetting the marker. *)
