(** Discrete-event calendar.

    A time-ordered queue of events used by the continuous-time components
    (the GPS fluid reference and the MAC simulator).  Events scheduled for
    the same instant fire in scheduling order. *)

type 'a t

val create : unit -> 'a t

val schedule : 'a t -> at:float -> 'a -> unit
(** [schedule q ~at ev] enqueues [ev] to fire at time [at].
    @raise Invalid_argument if [at] is NaN. *)

val next_time : 'a t -> float option
(** Time of the earliest pending event. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the earliest event with its timestamp. *)

val is_empty : 'a t -> bool
val length : 'a t -> int
val clear : 'a t -> unit
