type event =
  | Arrival of { flow : int; seq : int }
  | Transmit_ok of { flow : int; seq : int; delay : int }
  | Transmit_fail of { flow : int; seq : int; attempt : int }
  | Drop of { flow : int; seq : int; reason : string }
  | Slot_idle
  | Swap of { from_flow : int; to_flow : int }
  | Credit of { flow : int; delta : int }
  | Frame_start of { length : int }

type entry = { slot : int; event : event }

type t = { enabled : bool; mutable entries : entry list (* reversed *) }

let create ?(enabled = true) () = { enabled; entries = [] }
let enabled t = t.enabled

let record t ~slot event =
  if t.enabled then t.entries <- { slot; event } :: t.entries

let events t = List.rev t.entries
let filter t p = List.rev (List.filter p t.entries)

let count t p =
  List.fold_left (fun acc e -> if p e then acc + 1 else acc) 0 t.entries

let clear t = t.entries <- []

let pp_event ppf = function
  | Arrival { flow; seq } -> Format.fprintf ppf "arrival f%d#%d" flow seq
  | Transmit_ok { flow; seq; delay } ->
      Format.fprintf ppf "tx-ok f%d#%d delay=%d" flow seq delay
  | Transmit_fail { flow; seq; attempt } ->
      Format.fprintf ppf "tx-fail f%d#%d attempt=%d" flow seq attempt
  | Drop { flow; seq; reason } -> Format.fprintf ppf "drop f%d#%d (%s)" flow seq reason
  | Slot_idle -> Format.fprintf ppf "idle"
  | Swap { from_flow; to_flow } -> Format.fprintf ppf "swap f%d->f%d" from_flow to_flow
  | Credit { flow; delta } -> Format.fprintf ppf "credit f%d %+d" flow delta
  | Frame_start { length } -> Format.fprintf ppf "frame len=%d" length
