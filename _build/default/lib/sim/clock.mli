(** Monotonic simulation clock.

    A tiny mutable wrapper shared between co-simulated components (e.g. the
    slotted wireless system and its continuous-time fluid reference) so they
    agree on the current instant. *)

type t

val create : unit -> t
(** Starts at time 0. *)

val now : t -> float

val advance_to : t -> float -> unit
(** @raise Invalid_argument if the target precedes the current time. *)

val reset : t -> unit
