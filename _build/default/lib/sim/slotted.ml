type t = { mutable slot : int }

let create () = { slot = -1 }
let slot t = t.slot

let run t ~slots step =
  assert (slots >= 0);
  for _ = 1 to slots do
    t.slot <- t.slot + 1;
    step t.slot
  done

let run_until t step ~max_slots =
  assert (max_slots >= 0);
  let executed = ref 0 in
  let continue = ref true in
  while !continue && !executed < max_slots do
    t.slot <- t.slot + 1;
    incr executed;
    if not (step t.slot) then continue := false
  done;
  !executed

let reset t = t.slot <- -1
