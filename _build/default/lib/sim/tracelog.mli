(** Structured event trace of a simulation run.

    Optional recording of per-slot scheduler activity.  The bounds verifier
    (lib/bounds) replays traces to check the theorems of Section 5 against
    measured behaviour, and tests use traces to assert scheduling order. *)

type event =
  | Arrival of { flow : int; seq : int }
  | Transmit_ok of { flow : int; seq : int; delay : int }
  | Transmit_fail of { flow : int; seq : int; attempt : int }
  | Drop of { flow : int; seq : int; reason : string }
  | Slot_idle
  | Swap of { from_flow : int; to_flow : int }
  | Credit of { flow : int; delta : int }
  | Frame_start of { length : int }

type entry = { slot : int; event : event }

type t

val create : ?enabled:bool -> unit -> t
(** A disabled trace records nothing and costs nothing; default enabled. *)

val enabled : t -> bool
val record : t -> slot:int -> event -> unit
val events : t -> entry list
(** In chronological order. *)

val filter : t -> (entry -> bool) -> entry list
val count : t -> (entry -> bool) -> int
val clear : t -> unit
val pp_event : Format.formatter -> event -> unit
