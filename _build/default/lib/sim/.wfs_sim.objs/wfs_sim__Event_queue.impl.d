lib/sim/event_queue.ml: Float Wfs_util
