lib/sim/clock.mli:
