lib/sim/tracelog.mli: Format
