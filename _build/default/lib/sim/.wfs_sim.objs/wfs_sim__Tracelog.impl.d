lib/sim/tracelog.ml: Format List
