lib/sim/clock.ml: Printf
