lib/sim/slotted.ml:
