lib/sim/slotted.mli:
