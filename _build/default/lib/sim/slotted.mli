(** Driver for slotted (TDMA-style) simulations.

    The wireless system of the paper is slotted: one fixed-size packet per
    slot.  This module owns the slot loop so that every simulation advances
    phases in the same order and instrumentation hooks observe a consistent
    schedule. *)

type t

val create : unit -> t

val slot : t -> int
(** Index of the slot currently being executed (0-based); [-1] before the
    first slot. *)

val run : t -> slots:int -> (int -> unit) -> unit
(** [run t ~slots step] executes [step s] for [s = 0 .. slots-1], updating
    {!slot} before each call.  Can be called repeatedly to extend a run; slot
    numbering continues from the previous call. *)

val run_until : t -> (int -> bool) -> max_slots:int -> int
(** [run_until t step ~max_slots] executes [step] until it returns [false]
    or [max_slots] further slots have elapsed; returns the number of slots
    executed. *)

val reset : t -> unit
