type tagged = { job : Job.t; start : float; finish : float }

type t = {
  gps : Gps.t;
  waiting : tagged Wfs_util.Heap.t;  (* not yet eligible, ordered by start *)
  eligible : tagged Wfs_util.Heap.t;  (* ordered by finish *)
}

let eps = 1e-9

let create ~capacity flows =
  {
    gps = Gps.create ~capacity flows;
    waiting = Wfs_util.Heap.create ~leq:(fun a b -> a.start <= b.start) ();
    eligible = Wfs_util.Heap.create ~leq:(fun a b -> a.finish <= b.finish) ();
  }

let enqueue t (job : Job.t) =
  let start, finish =
    Gps.arrive t.gps ~time:job.arrival ~flow:job.flow ~size:job.size
  in
  Wfs_util.Heap.push t.waiting { job; start; finish }

let promote t v =
  let rec loop () =
    match Wfs_util.Heap.peek t.waiting with
    | Some tagged when tagged.start <= v +. eps ->
        ignore (Wfs_util.Heap.pop t.waiting);
        Wfs_util.Heap.push t.eligible tagged;
        loop ()
    | Some _ | None -> ()
  in
  loop ()

let dequeue t ~time =
  let v = Gps.virtual_time t.gps ~time in
  promote t v;
  match Wfs_util.Heap.pop t.eligible with
  | Some { job; _ } -> Some job
  | None -> (
      (* A busy WF2Q server always has an eligible packet in exact
         arithmetic; fall back to the earliest start tag to stay
         work-conserving under floating-point rounding. *)
      match Wfs_util.Heap.pop t.waiting with
      | Some { job; _ } -> Some job
      | None -> None)

let queued t = Wfs_util.Heap.length t.waiting + Wfs_util.Heap.length t.eligible
let gps t = t.gps

let instance ~capacity flows =
  let t = create ~capacity flows in
  Sched_intf.make ~name:"WF2Q" ~enqueue:(enqueue t)
    ~dequeue:(fun ~time -> dequeue t ~time)
    ~queued:(fun () -> queued t)
