(** Generalized Processor Sharing (fluid fair queueing) reference simulation.

    Exact event-driven simulation of the Parekh–Gallager fluid server: every
    backlogged flow [i] is served simultaneously at instantaneous rate
    [C · r_i / Σ_{j ∈ B(t)} r_j].  Provides:

    - the system virtual time [v(t)] with slope [C / Σ_{j∈B(t)} r_j] during
      busy periods (constant when idle), used by WFQ/WF²Q to stamp tags;
    - per-packet virtual start/finish tags
      [S = max(v(a), F_prev)], [F = S + size/r];
    - exact real-valued fluid departure instants of every packet (the instant
      [v] crosses its finish tag), against which the packetized schedulers'
      Lemma-1 bounds are tested;
    - cumulative fluid service per flow, the [S_i(t1,t2)] of the paper's
      fairness definition (equation 1).

    All mutating calls must be made in non-decreasing time order. *)

type t

type departure = { flow : int; seq : int; finish_tag : float; time : float }

val create : capacity:float -> Flow.t array -> t
(** Flows must have ids [0 .. n-1] in order.
    @raise Invalid_argument otherwise or on non-positive capacity. *)

val arrive : t -> time:float -> flow:int -> size:float -> float * float
(** Register an arrival; returns its [(start_tag, finish_tag)]. *)

val advance_to : t -> float -> unit
(** Advance the fluid system to the given real time, processing all fluid
    departures on the way. *)

val virtual_time : t -> time:float -> float
(** [v(time)]; advances the system to [time]. *)

val service : t -> flow:int -> float
(** Cumulative fluid service (bits) granted to [flow] up to the last
    advanced instant. *)

val backlog : t -> flow:int -> float
(** Fluid backlog (bits not yet served) of [flow] at the last advanced
    instant. *)

val is_backlogged : t -> flow:int -> bool
(** Whether [flow] has unfinished fluid work at the last advanced instant. *)

val backlogged_weight : t -> float
(** Σ of weights of currently backlogged flows (0 when idle). *)

val departures : t -> departure list
(** All fluid departures processed so far, in time order. *)

val drain_departures : t -> departure list
(** As {!departures} but clears the internal list (use for incremental
    consumption). *)

val now : t -> float
(** Last advanced real time. *)
