(** A packet as seen by the continuous-time wireline schedulers: arrival is a
    real-valued instant and size is in bits. *)

type t = { flow : int; seq : int; arrival : float; size : float }

val make : flow:int -> seq:int -> arrival:float -> size:float -> t
(** @raise Invalid_argument on a non-positive size or negative arrival. *)

val pp : Format.formatter -> t -> unit
