(** Weighted Round Robin over per-flow FIFO queues.

    Integer weights; a round visits flows in id order, serving up to [w_i]
    packets from flow [i].  Empty queues are skipped (work-conserving).
    WPS (the wireless paper's practical algorithm) is a WRR at heart, with
    WF²Q spreading replacing the consecutive per-flow service below. *)

type t

val create : capacity:float -> Flow.t array -> t
(** Weights are rounded to the nearest positive integer. *)

val enqueue : t -> Job.t -> unit
val dequeue : t -> time:float -> Job.t option
val queued : t -> int
val instance : capacity:float -> Flow.t array -> Sched_intf.instance
