(** Start-Time Fair Queueing — Goyal, Vin & Cheng 1996.

    Serves the packet with the smallest {e start} tag (ties by finish tag);
    system virtual time is the start tag of the packet in service.  Fair
    even when the server capacity fluctuates, which is why the wireless
    paper cites it as the closest wireline relative — though it still
    assumes all flows see the same channel. *)

type t

val create : capacity:float -> Flow.t array -> t
val enqueue : t -> Job.t -> unit
val dequeue : t -> time:float -> Job.t option
val queued : t -> int
val virtual_time : t -> float
val instance : capacity:float -> Flow.t array -> Sched_intf.instance
