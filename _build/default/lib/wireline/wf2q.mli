(** Worst-case Fair Weighted Fair Queueing (WF²Q) — Bennett & Zhang 1996.

    Like WFQ but a packet is only eligible for service once its fluid
    service would have started, i.e. its start tag is at most the current
    GPS virtual time.  Among eligible packets the smallest finish tag wins.
    This removes WFQ's burstiness: a flow can never be ahead of its fluid
    service by more than one packet.  WPS uses WF²Q ordering as its
    slot-spreading rule (Section 7 of the wireless paper). *)

type t

val create : capacity:float -> Flow.t array -> t
val enqueue : t -> Job.t -> unit
val dequeue : t -> time:float -> Job.t option
val queued : t -> int
val gps : t -> Gps.t
val instance : capacity:float -> Flow.t array -> Sched_intf.instance
