(** Virtual Clock — Zhang 1991.

    Each flow's clock advances by [size/r] per packet but never falls behind
    real time; packets are served in clock order.  Provides rate guarantees
    but — the contrast Section 3 of the wireless paper draws — it lets an
    idle flow reclaim missed capacity later, and punishes flows that used
    idle capacity.  The wireless compensation model deliberately differs:
    only error-induced (not idleness-induced) lag is reclaimable. *)

type t

val create : capacity:float -> Flow.t array -> t
val enqueue : t -> Job.t -> unit
val dequeue : t -> time:float -> Job.t option
val queued : t -> int

val clock : t -> flow:int -> float
(** Current auxiliary virtual clock of [flow]. *)

val instance : capacity:float -> Flow.t array -> Sched_intf.instance
