(** Flow descriptors for the wireline substrate.

    A flow is a stream of packets sharing one queue and one weight [r] (the
    paper's [r_i]); weights are real-valued and need not be normalised. *)

type t = { id : int; weight : float }

val make : id:int -> weight:float -> t
(** @raise Invalid_argument on a non-positive weight. *)

val equal_weights : int -> t array
(** [equal_weights n] is n flows with ids [0..n-1] and weight 1. *)

val of_weights : float array -> t array
(** Flows with ids [0..n-1] and the given weights. *)

val total_weight : t array -> float
