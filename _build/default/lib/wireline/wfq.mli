(** Weighted Fair Queueing (PGPS) — Demers, Keshav & Shenker 1989.

    Packets are stamped with the virtual finish tag they would have under
    the GPS fluid system ({!Gps}) and served in increasing finish-tag order,
    non-preemptively.  Parekh–Gallager (the paper's Lemma 1): a packet
    finishes under WFQ no later than [L_p / C] after its fluid finish
    instant. *)

type t

val create : capacity:float -> Flow.t array -> t
val enqueue : t -> Job.t -> unit
val dequeue : t -> time:float -> Job.t option
val queued : t -> int

val finish_tag : t -> Job.t -> float
(** Finish tag assigned at enqueue.
    @raise Not_found for a job never enqueued. *)

val gps : t -> Gps.t
(** The internal fluid reference (shared arrivals), exposed so tests can
    compare packetized and fluid behaviour on identical inputs. *)

val instance : capacity:float -> Flow.t array -> Sched_intf.instance
