lib/wireline/wrr.mli: Flow Job Sched_intf
