lib/wireline/gps.mli: Flow
