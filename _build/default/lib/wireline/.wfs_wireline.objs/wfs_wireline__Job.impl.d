lib/wireline/job.ml: Format
