lib/wireline/virtual_clock.mli: Flow Job Sched_intf
