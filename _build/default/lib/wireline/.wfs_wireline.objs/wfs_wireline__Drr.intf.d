lib/wireline/drr.mli: Flow Job Sched_intf
