lib/wireline/wf2q_plus.ml: Array Float Flow Job Option Queue Sched_intf
