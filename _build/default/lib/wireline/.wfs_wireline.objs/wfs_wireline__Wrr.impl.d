lib/wireline/wrr.ml: Array Float Flow Job Queue Sched_intf
