lib/wireline/wf2q.mli: Flow Gps Job Sched_intf
