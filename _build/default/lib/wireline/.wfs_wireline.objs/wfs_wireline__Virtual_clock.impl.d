lib/wireline/virtual_clock.ml: Array Float Flow Job Sched_intf Wfs_util
