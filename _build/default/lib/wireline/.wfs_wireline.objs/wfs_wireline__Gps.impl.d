lib/wireline/gps.ml: Array Float Flow List Printf Wfs_util
