lib/wireline/server.ml: Float Hashtbl Job List Option Sched_intf
