lib/wireline/sched_intf.mli: Job
