lib/wireline/flow.ml: Array
