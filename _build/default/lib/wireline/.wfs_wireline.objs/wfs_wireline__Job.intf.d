lib/wireline/job.mli: Format
