lib/wireline/flow.mli:
