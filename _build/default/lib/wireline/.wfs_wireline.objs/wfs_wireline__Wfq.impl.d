lib/wireline/wfq.ml: Gps Hashtbl Job Sched_intf Wfs_util
