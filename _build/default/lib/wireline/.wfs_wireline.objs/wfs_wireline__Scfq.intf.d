lib/wireline/scfq.mli: Flow Job Sched_intf
