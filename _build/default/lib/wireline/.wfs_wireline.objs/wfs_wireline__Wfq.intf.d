lib/wireline/wfq.mli: Flow Gps Job Sched_intf
