lib/wireline/drr.ml: Array Flow Job Queue Sched_intf
