lib/wireline/stfq.mli: Flow Job Sched_intf
