lib/wireline/wf2q_plus.mli: Flow Job Sched_intf
