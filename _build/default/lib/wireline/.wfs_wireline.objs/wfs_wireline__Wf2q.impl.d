lib/wireline/wf2q.ml: Gps Job Sched_intf Wfs_util
