lib/wireline/server.mli: Job Sched_intf
