lib/wireline/sched_intf.ml: Job
