lib/wireline/stfq.ml: Array Float Flow Job Sched_intf Wfs_util
