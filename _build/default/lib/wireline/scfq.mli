(** Self-Clocked Fair Queueing — Golestani 1994.

    Avoids the fluid reference entirely: the system virtual time is the
    finish tag of the packet currently in service, so tags cost O(1).
    Slightly weaker delay bounds than WFQ, much cheaper. *)

type t

val create : capacity:float -> Flow.t array -> t
val enqueue : t -> Job.t -> unit
val dequeue : t -> time:float -> Job.t option
val queued : t -> int

val virtual_time : t -> float
(** Current self-clocked virtual time. *)

val instance : capacity:float -> Flow.t array -> Sched_intf.instance
