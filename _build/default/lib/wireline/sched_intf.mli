(** Common runtime interface for the packetized wireline schedulers.

    Each scheduler module exposes a typed API plus an [instance] constructor
    returning this record, which the {!Server} driver and the comparative
    tests/benches consume uniformly. *)

type instance = {
  name : string;
  enqueue : Job.t -> unit;
      (** Called in non-decreasing order of [Job.arrival]. *)
  dequeue : time:float -> Job.t option;
      (** Select the next job to put on the wire at [time]; [None] iff no
          job is queued. *)
  queued : unit -> int;  (** Number of jobs waiting (excludes in service). *)
}

val make :
  name:string ->
  enqueue:(Job.t -> unit) ->
  dequeue:(time:float -> Job.t option) ->
  queued:(unit -> int) ->
  instance
