(** Deficit Round Robin — Shreedhar & Varghese 1995.

    Byte-accurate round robin for variable packet sizes: each backlogged
    flow banks [quantum × weight] per round and sends head-of-line packets
    while its deficit covers them.  Included as the standard low-cost
    wireline baseline alongside WRR. *)

type t

val create : ?quantum:float -> capacity:float -> Flow.t array -> t
(** [quantum] is the base per-round allowance in bits (default: the largest
    weight-normalised packet we expect, 1.0). *)

val enqueue : t -> Job.t -> unit
val dequeue : t -> time:float -> Job.t option
val queued : t -> int
val deficit : t -> flow:int -> float
val instance : ?quantum:float -> capacity:float -> Flow.t array -> Sched_intf.instance
