type tagged = { job : Job.t; finish : float }

type t = {
  gps : Gps.t;
  heap : tagged Wfs_util.Heap.t;  (* ordered by finish tag *)
  tags : (int * int, float) Hashtbl.t;  (* (flow, seq) -> finish *)
}

let create ~capacity flows =
  {
    gps = Gps.create ~capacity flows;
    heap = Wfs_util.Heap.create ~leq:(fun a b -> a.finish <= b.finish) ();
    tags = Hashtbl.create 64;
  }

let enqueue t (job : Job.t) =
  let _start, finish =
    Gps.arrive t.gps ~time:job.arrival ~flow:job.flow ~size:job.size
  in
  Hashtbl.replace t.tags (job.flow, job.seq) finish;
  Wfs_util.Heap.push t.heap { job; finish }

let dequeue t ~time =
  Gps.advance_to t.gps time;
  match Wfs_util.Heap.pop t.heap with
  | None -> None
  | Some { job; _ } -> Some job

let queued t = Wfs_util.Heap.length t.heap

let finish_tag t (job : Job.t) =
  match Hashtbl.find_opt t.tags (job.flow, job.seq) with
  | Some f -> f
  | None -> raise Not_found

let gps t = t.gps

let instance ~capacity flows =
  let t = create ~capacity flows in
  Sched_intf.make ~name:"WFQ" ~enqueue:(enqueue t)
    ~dequeue:(fun ~time -> dequeue t ~time)
    ~queued:(fun () -> queued t)
