type instance = {
  name : string;
  enqueue : Job.t -> unit;
  dequeue : time:float -> Job.t option;
  queued : unit -> int;
}

let make ~name ~enqueue ~dequeue ~queued = { name; enqueue; dequeue; queued }
