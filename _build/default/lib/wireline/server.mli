(** Non-preemptive single-link server driver for the wireline schedulers.

    Feeds a time-ordered arrival trace to a scheduler and simulates a link
    of fixed capacity serving one packet at a time: whenever the link is
    free the scheduler chooses the next packet, which then occupies the link
    for [size / capacity].  Produces per-packet completion records used by
    tests (Lemma-1 style bounds) and benches. *)

type completion = {
  job : Job.t;
  start : float;  (** instant service began *)
  finish : float;  (** instant the last bit left the link *)
}

val run :
  capacity:float -> Sched_intf.instance -> Job.t list -> completion list
(** [run ~capacity sched jobs] simulates until all jobs complete; [jobs]
    need not be sorted (they are sorted by arrival, ties by list order).
    Completions are returned in service order. *)

val delays_by_flow : completion list -> (int * float list) list
(** Per-flow lists of [finish − arrival] delays, in service order,
    flows sorted by id. *)

val throughput_by_flow :
  completion list -> until:float -> (int * float) list
(** Bits delivered per flow among completions with [finish <= until]. *)
