(** WF²Q+ — Bennett & Zhang 1997.

    The O(1)-virtual-time successor of {!Wf2q}: instead of simulating the
    fluid reference, the system virtual time advances by the normalised
    size of each served packet and jumps up to the minimum start tag of the
    backlogged flows:

    [V ← max(V + L/Σr, min_{i backlogged} S_i)]

    Per-flow tags are kept only for the head packet ([S = max(V, F_prev)]
    on arrival to an empty queue, [S = F_prev] on head change).  Selection
    is eligibility-gated smallest-finish-tag, like WF²Q.  Retains WF²Q's
    worst-case fairness with much cheaper bookkeeping — included both as a
    substrate baseline and because WPS's frame spreading is exactly the
    all-backlogged special case of this discipline. *)

type t

val create : capacity:float -> Flow.t array -> t
val enqueue : t -> Job.t -> unit
val dequeue : t -> time:float -> Job.t option
val queued : t -> int
val virtual_time : t -> float
val instance : capacity:float -> Flow.t array -> Sched_intf.instance
