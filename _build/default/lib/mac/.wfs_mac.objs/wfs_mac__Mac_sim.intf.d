lib/mac/mac_sim.mli: Frame Wfs_channel Wfs_core Wfs_sim Wfs_traffic Wfs_util
