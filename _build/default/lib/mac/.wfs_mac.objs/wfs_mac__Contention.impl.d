lib/mac/contention.ml: Array List Wfs_util
