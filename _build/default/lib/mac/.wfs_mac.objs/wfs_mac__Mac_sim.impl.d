lib/mac/mac_sim.ml: Array Contention Frame Hashtbl List Queue Wfs_channel Wfs_core Wfs_sim Wfs_traffic Wfs_util
