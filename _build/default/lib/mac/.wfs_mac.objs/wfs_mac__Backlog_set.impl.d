lib/mac/backlog_set.ml: Array List
