lib/mac/frame.ml: Format
