lib/mac/contention.mli: Wfs_util
