lib/mac/frame.mli: Format
