lib/mac/backlog_set.mli:
