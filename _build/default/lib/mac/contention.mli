(** Notification-slot contention (Section 6.2).

    During a control slot's notification sub-slot, every mobile host with a
    newly backlogged uplink flow (and no ongoing flow to piggyback on) picks
    one mini-slot uniformly at random and transmits its notification there.
    A mini-slot chosen by exactly one host succeeds; collided hosts learn
    from the advertisement sub-slot that they failed and retry at the next
    control slot.  (The paper notes slotted-ALOHA-style retry would improve
    this; the single-shot rule here is its baseline.) *)

type outcome = {
  winners : int list;  (** contenders that got through, any order *)
  collided : int list;  (** contenders that transmitted and collided *)
  deferred : int list;  (** contenders that chose not to transmit (ALOHA) *)
}

val contend :
  rng:Wfs_util.Rng.t -> minislots:int -> contenders:int list -> outcome
(** The paper's baseline single-shot rule: every contender transmits in one
    uniformly chosen mini-slot ([deferred] is always empty).
    @raise Invalid_argument if [minislots <= 0]. *)

val contend_aloha :
  rng:Wfs_util.Rng.t ->
  minislots:int ->
  persistence:float ->
  contenders:int list ->
  outcome
(** Section 6.2's suggested improvement: p-persistent slotted ALOHA.  Each
    contender transmits with probability [persistence] (otherwise it
    defers to the next control slot); transmitters pick a mini-slot
    uniformly.  With many contenders a persistence below 1 raises the
    expected number of winners per control slot.
    @raise Invalid_argument if [minislots <= 0] or [persistence] is outside
    (0, 1]. *)

val success_probability : minislots:int -> contenders:int -> float
(** Analytic per-contender success probability of the single-shot rule —
    each of [contenders] picks one of [minislots] uniformly:
    [(1 − 1/m)^(k−1)].  Used by tests to validate {!contend}
    statistically. *)

val aloha_success_probability :
  minislots:int -> persistence:float -> contenders:int -> float
(** Per-contender success probability under {!contend_aloha}:
    [p · (1 − p/m)^(k−1)]. *)
