(** The base station's set of known backlogged flows (Section 6.1).

    The scheduler may only allocate slots to flows the base station knows to
    be backlogged.  Downlink queues are local, so their sizes are exact;
    uplink queue sizes are {e beliefs}, refreshed from the counts flows
    piggyback on their data packets, and a flow reporting zero is removed
    from the set.  Uplink arrivals are invisible until reported, so the
    believed size may trail the true size — exactly the information model
    the paper imposes on the scheduler. *)

type t

val create : n_flows:int -> t

val known : t -> flow:int -> bool
(** Is the flow in the known-backlogged set? *)

val believed_queue : t -> flow:int -> int
(** The base station's current belief; 0 for unknown flows. *)

val report : t -> flow:int -> queue:int -> unit
(** A piggybacked (or locally observed) queue size: [queue = 0] removes the
    flow from the set, a positive value (re)admits it. *)

val notify : t -> flow:int -> queue:int -> unit
(** A successful notification-slot contention: admit with the advertised
    queue size (at least 1). *)

val decrement : t -> flow:int -> unit
(** One believed packet was served (keeps beliefs self-consistent between
    reports); removes the flow when the belief reaches 0. *)

val known_flows : t -> int list
(** Ascending flow ids. *)

val cardinal : t -> int
