lib/bounds/verify.ml: Array Float Format Hashtbl List Theorems Wfs_channel Wfs_core Wfs_sim
