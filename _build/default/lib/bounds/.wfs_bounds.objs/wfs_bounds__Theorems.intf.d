lib/bounds/theorems.mli:
