lib/bounds/theorems.ml: Array
