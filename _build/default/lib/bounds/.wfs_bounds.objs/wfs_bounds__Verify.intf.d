lib/bounds/verify.mli: Format Wfs_channel Wfs_core
