(** The analytical guarantees of Section 5 as executable bound calculators.

    All quantities are in slot/packet units ([L_P = 1], [C = 1] packet per
    slot), matching {!Wfs_core}.  Weights are the [r_i]; [lag_total] is the
    aggregate lag bound [B] in packets; [lead] the per-flow [l_i].

    These functions compute the right-hand sides of the theorems; the
    {!Verify} module checks simulated IWFQ runs against them. *)

type system = {
  weights : float array;
  lag_total : float;  (** B, packets *)
  lead : float array;  (** l_i, packets *)
}

val make : weights:float array -> lag_total:float -> lead:float array -> system
(** @raise Invalid_argument on length mismatch or non-positive weights. *)

val wfq_max_hol_delay : system -> flow:int -> float
(** The classic WFQ head-of-line bound the paper quotes in Section 4:
    [d_WFQ ≤ L_P/C + (L_P·Σr_j)/(r_i·C)] slots. *)

val extra_delay_error_free : system -> float
(** Lemma 2 / Theorem 1: on an error-free channel IWFQ finishes any slot at
    most [Δd = B/C] slots after error-free WFQ would. *)

val new_queue_delay : system -> flow:int -> float
(** Theorem 3: bound on the delay of a packet arriving at an empty queue of
    an error-free flow: [Δd_g + d_WFQ + ΔT_g] with
    [ΔT_g = l_g·(Σ_{j≠g} r_j)/(C·r_g)]. *)

val short_term_backlog_clearance : system -> flow:int -> lags:float array -> lead_now:float -> float
(** Theorem 4's [T_g(t)]: the horizon (slots) after which an error-free
    flow's IWFQ service dominates its error-free WFQ service shifted by
    [T_g], given current per-flow lags [b_j(t)] (packets) and [flow]'s own
    current lead [l_g(t)]. *)

val error_prone_extra_delay : system -> flow:int -> good_slot_time:(int -> float) -> float
(** Theorem 5: delay bound increase for an error-prone flow [e]:
    [T_{e,(M+1)}] where [M = Σ_{j≠e} b_j] is the worst-case number of
    lagging slots of other flows and [good_slot_time k] returns the worst
    case time for flow [e] to see its [k]-th good slot.  For a
    deterministic channel model this is exact; for stochastic channels pass
    a quantile. *)

val max_lagging_slots_of_others : system -> flow:int -> float
(** [M = Σ_{j≠flow} B_j] in packets (Fact 1 restricted to other flows). *)

val throughput_short_term : system -> flow:int -> good_slots:int -> lags:float array -> lead_now:float -> float
(** Theorem 7's lower bound on the packets flow [e] receives while it is
    continuously backlogged and sees [good_slots] good slots:
    [(N_G − N(t))·r_e/Σr − 1] packets, with
    [N(t) = Σ_{i≠e} b_i(t) + l_e(t)·(Σ_{i≠e} r_i)/r_e]. *)
