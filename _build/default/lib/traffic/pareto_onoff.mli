(** Heavy-tailed on-off source.

    Like {!Onoff} but ON/OFF period lengths are Pareto-distributed, the
    standard model for self-similar web traffic: rare, very long bursts
    dominate.  Used by the web-browsing example to stress schedulers with
    burst lengths that a geometric source never produces. *)

val create :
  rng:Wfs_util.Rng.t ->
  ?packets_per_on_slot:int ->
  ?shape:float ->
  mean_on:float ->
  mean_off:float ->
  unit ->
  Arrival.t
(** ON/OFF period lengths (in slots, at least 1) are drawn from a Pareto
    distribution with tail index [shape] (default 1.5 — infinite variance,
    finite mean) scaled to the requested means.  [shape] must exceed 1 for
    the mean to exist; [mean_on], [mean_off] must be ≥ 1. *)

val pareto : rng:Wfs_util.Rng.t -> shape:float -> scale:float -> float
(** One Pareto(shape, scale) draw: [scale / U^(1/shape)], support
    [\[scale, ∞)].  Exposed for tests. *)
