(** Constant-bit-rate source.

    Deterministic arrivals every [interarrival] slots (fractional intervals
    are supported; arrivals land in the slot containing their ideal instant).
    Example 1's Source 2 is CBR with interarrival 2. *)

val create : ?phase:float -> interarrival:float -> unit -> Arrival.t
(** [create ~interarrival ()] emits the first packet in the slot containing
    time [phase] (default 0, i.e. slot 0) and every [interarrival] slots
    after.  [interarrival] must be positive. *)
