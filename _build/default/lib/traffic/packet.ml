type t = {
  flow : int;
  seq : int;
  arrival : int;
  size : int;
  mutable attempts : int;
}

let make ~flow ~seq ~arrival ?(size = 1) () =
  assert (size > 0);
  { flow; seq; arrival; size; attempts = 0 }

let delay t ~departed = departed - t.arrival
let age t ~now = now - t.arrival

let pp ppf t =
  Format.fprintf ppf "f%d#%d@%d(size=%d,att=%d)" t.flow t.seq t.arrival t.size
    t.attempts
