lib/traffic/arrival.mli:
