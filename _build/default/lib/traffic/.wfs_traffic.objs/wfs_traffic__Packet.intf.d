lib/traffic/packet.mli: Format
