lib/traffic/packet.ml: Format
