lib/traffic/mmpp.ml: Arrival Printf Wfs_util
