lib/traffic/mmpp.mli: Arrival Wfs_util
