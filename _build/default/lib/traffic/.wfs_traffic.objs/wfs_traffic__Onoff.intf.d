lib/traffic/onoff.mli: Arrival Wfs_util
