lib/traffic/trace_source.ml: Arrival Hashtbl List Option
