lib/traffic/arrival.ml:
