lib/traffic/trace_source.mli: Arrival
