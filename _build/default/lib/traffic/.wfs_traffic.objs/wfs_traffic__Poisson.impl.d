lib/traffic/poisson.ml: Arrival Printf Wfs_util
