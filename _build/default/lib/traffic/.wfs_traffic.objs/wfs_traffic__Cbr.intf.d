lib/traffic/cbr.mli: Arrival
