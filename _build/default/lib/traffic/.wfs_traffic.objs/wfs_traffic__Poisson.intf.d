lib/traffic/poisson.mli: Arrival Wfs_util
