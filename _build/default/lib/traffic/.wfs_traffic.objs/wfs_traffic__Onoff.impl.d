lib/traffic/onoff.ml: Arrival Printf Wfs_util
