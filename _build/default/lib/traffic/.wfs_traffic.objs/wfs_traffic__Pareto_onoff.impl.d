lib/traffic/pareto_onoff.ml: Arrival Float Printf Wfs_util
