lib/traffic/cbr.ml: Arrival Printf
