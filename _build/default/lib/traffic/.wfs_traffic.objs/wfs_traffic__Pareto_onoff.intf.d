lib/traffic/pareto_onoff.mli: Arrival Wfs_util
