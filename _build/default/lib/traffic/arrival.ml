type t = { label : string; mean_rate : float; step : int -> int }

let make ~label ~mean_rate step = { label; mean_rate; step }
let arrivals t ~slot = t.step slot
let label t = t.label
let mean_rate t = t.mean_rate
