(** Discrete-time on-off source.

    A simpler bursty source than {!Mmpp}: the source alternates between ON
    and OFF periods with geometrically distributed lengths (in slots); while
    ON it emits a fixed number of packets per slot.  Used by the example
    applications to model talk-spurt style traffic. *)

val create :
  rng:Wfs_util.Rng.t ->
  ?packets_per_on_slot:int ->
  p_on_to_off:float ->
  p_off_to_on:float ->
  unit ->
  Arrival.t
(** [p_on_to_off] / [p_off_to_on] are per-slot switching probabilities in
    (0,1]; [packets_per_on_slot] defaults to 1.  The source starts OFF. *)
