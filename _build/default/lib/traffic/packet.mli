(** Packets.

    The paper assumes small fixed-size packets, one per slot (Sections 4
    and 6); [size] is carried in bits for the variable-size wireline
    substrate (lib/wireline), where WFQ-family tags divide by it. *)

type t = {
  flow : int;  (** owning flow id *)
  seq : int;  (** per-flow sequence number, from 0 *)
  arrival : int;  (** arrival slot *)
  size : int;  (** bits; 1 in the slotted wireless model *)
  mutable attempts : int;  (** transmission attempts so far *)
}

val make : flow:int -> seq:int -> arrival:int -> ?size:int -> unit -> t
(** Fresh packet with [attempts = 0]; default [size] 1. *)

val delay : t -> departed:int -> int
(** Queueing delay in slots if delivered in slot [departed] (a packet
    delivered in its arrival slot has delay 0). *)

val age : t -> now:int -> int
(** Slots spent in the system so far. *)

val pp : Format.formatter -> t -> unit
