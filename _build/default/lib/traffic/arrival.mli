(** Arrival-process abstraction.

    An arrival process is queried once per slot and answers how many packets
    arrive during that slot.  Concrete processes (CBR, Poisson, MMPP, on-off,
    trace) live in sibling modules and all construct values of this type, so
    simulators can mix heterogeneous sources freely. *)

type t

val make : label:string -> mean_rate:float -> (int -> int) -> t
(** [make ~label ~mean_rate step] wraps [step], which receives the slot index
    and returns the number of arrivals in that slot.  [mean_rate] is the
    long-run packets-per-slot average, used for load accounting and display
    only. *)

val arrivals : t -> slot:int -> int
(** Number of packets arriving in [slot].  Must be called with strictly
    increasing slot indices; processes may keep internal state. *)

val label : t -> string

val mean_rate : t -> float
(** Declared long-run rate in packets per slot. *)
