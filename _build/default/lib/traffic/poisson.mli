(** Poisson source: i.i.d. Poisson(rate) arrivals per slot.

    Examples 3–5 use Poisson sources (λ = 0.25, 8.0, 0.07, ...). *)

val create : rng:Wfs_util.Rng.t -> rate:float -> Arrival.t
(** [rate] in packets per slot; must be non-negative. *)
