(** Markov-modulated Poisson process (MMPP).

    Exact simulation of the paper's bursty source (Example 1, Source 1): a
    continuous-time ON/OFF Markov chain (ON→OFF rate 9, OFF→ON rate 1) where
    arrivals are Poisson with rate [on_rate] while ON and silent while OFF.
    Sojourns are simulated exactly and sliced at slot boundaries, so the
    per-slot counts follow the true MMPP law with the slot as time unit. *)

val create :
  rng:Wfs_util.Rng.t ->
  ?on_to_off:float ->
  ?off_to_on:float ->
  ?time_scale:float ->
  on_rate:float ->
  unit ->
  Arrival.t
(** Defaults [on_to_off = 9.] and [off_to_on = 1.] are the paper's modulating
    chain.  The chain starts OFF, which approximates the stationary
    distribution (OFF probability 0.9 with the default rates).  The
    modulating rates are divided by [time_scale] (default 1): the paper
    leaves the chain's time unit unspecified, and this knob sets how many
    slots it spans.  [on_rate] is per slot.  All rates must be positive. *)

val paper_source :
  ?time_scale:float -> rng:Wfs_util.Rng.t -> mean_rate:float -> unit -> Arrival.t
(** The paper's MMPP family: modulating chain fixed at (9, 1) so the ON
    fraction is 0.1, with the ON arrival rate chosen as [10 × mean_rate] to
    achieve the stated mean (Tables 5 and 7 give mean rates).  The default
    [time_scale = 20.] (ON periods of ~2 slots carrying ~4-packet trains,
    OFF periods of ~20 slots) was calibrated against Table 1's absolute
    delay scale; see EXPERIMENTS.md for the calibration. *)
