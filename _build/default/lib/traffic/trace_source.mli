(** Trace-driven source.

    Replays a fixed list of (slot, count) arrivals — used in unit tests to
    construct exact scenarios (e.g. the fairness counterexample of Section 3)
    and to feed recorded workloads into the simulator. *)

val create : (int * int) list -> Arrival.t
(** [create arrivals] with [(slot, count)] pairs; slots may appear in any
    order and duplicate slots accumulate.
    @raise Invalid_argument on a negative slot or count. *)

val of_slots : int list -> Arrival.t
(** [of_slots slots]: one packet in each listed slot. *)
