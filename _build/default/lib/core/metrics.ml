module Summary = Wfs_util.Stats.Summary
module Histogram = Wfs_util.Stats.Histogram

type flow_acc = {
  delays : Summary.t;
  histogram : Histogram.t option;
  mutable arrivals : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable failed : int;
}

type t = { flows : flow_acc array; mutable idle : int; mutable busy : int }

let create ?(histograms = false) ~n_flows () =
  {
    flows =
      Array.init n_flows (fun _ ->
          {
            delays = Summary.create ();
            histogram = (if histograms then Some (Histogram.create ()) else None);
            arrivals = 0;
            delivered = 0;
            dropped = 0;
            failed = 0;
          });
    idle = 0;
    busy = 0;
  }

let acc t flow = t.flows.(flow)
let on_arrival t ~flow = (acc t flow).arrivals <- (acc t flow).arrivals + 1

let on_deliver t ~flow ~delay =
  let a = acc t flow in
  a.delivered <- a.delivered + 1;
  Summary.add a.delays (float_of_int delay);
  match a.histogram with
  | Some h -> Histogram.add h (float_of_int delay)
  | None -> ()

let on_drop t ~flow = (acc t flow).dropped <- (acc t flow).dropped + 1
let on_idle_slot t = t.idle <- t.idle + 1
let on_busy_slot t = t.busy <- t.busy + 1
let on_failed_attempt t ~flow = (acc t flow).failed <- (acc t flow).failed + 1

let n_flows t = Array.length t.flows
let arrivals t ~flow = (acc t flow).arrivals
let delivered t ~flow = (acc t flow).delivered
let dropped t ~flow = (acc t flow).dropped
let failed_attempts t ~flow = (acc t flow).failed
let mean_delay t ~flow = Summary.mean (acc t flow).delays

let max_delay t ~flow =
  let a = acc t flow in
  if Summary.count a.delays = 0 then 0. else Summary.max a.delays

let stddev_delay t ~flow = Summary.stddev (acc t flow).delays

let delay_percentile t ~flow ~p =
  match (acc t flow).histogram with
  | Some h -> Histogram.percentile h p
  | None -> invalid_arg "Metrics.delay_percentile: created without histograms"

let loss t ~flow =
  let a = acc t flow in
  if a.arrivals = 0 then 0. else float_of_int a.dropped /. float_of_int a.arrivals

let drop_share t ~flow =
  let a = acc t flow in
  let settled = a.delivered + a.dropped in
  if settled = 0 then 0. else float_of_int a.dropped /. float_of_int settled

let throughput t ~flow ~slots =
  if slots <= 0 then 0.
  else float_of_int (acc t flow).delivered /. float_of_int slots

let idle_slots t = t.idle
let busy_slots t = t.busy

let backlog_remaining t ~flow =
  let a = acc t flow in
  a.arrivals - a.delivered - a.dropped
