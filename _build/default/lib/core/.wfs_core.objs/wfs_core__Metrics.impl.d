lib/core/metrics.ml: Array Wfs_util
