lib/core/cifq.ml: Array List Option Params Queue Wfs_traffic Wireless_sched
