lib/core/csdps.mli: Params Wireless_sched
