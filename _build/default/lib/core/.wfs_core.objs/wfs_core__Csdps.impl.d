lib/core/csdps.ml: Array Float List Params Queue Wfs_traffic Wireless_sched
