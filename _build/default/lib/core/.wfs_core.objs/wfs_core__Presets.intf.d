lib/core/presets.mli: Params Simulator Wfs_channel Wireless_sched
