lib/core/credit.mli:
