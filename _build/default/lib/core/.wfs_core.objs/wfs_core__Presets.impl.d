lib/core/presets.ml: Array Cifq Csdps Iwfq Params Simulator Wfs_channel Wfs_traffic Wfs_util Wps
