lib/core/fairness.mli: Metrics Wireless_sched
