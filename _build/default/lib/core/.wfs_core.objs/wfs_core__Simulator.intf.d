lib/core/simulator.mli: Metrics Params Wfs_channel Wfs_sim Wfs_traffic Wireless_sched
