lib/core/cifq.mli: Params Wireless_sched
