lib/core/wireless_sched.ml: Wfs_traffic
