lib/core/spreading.mli:
