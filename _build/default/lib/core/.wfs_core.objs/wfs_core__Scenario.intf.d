lib/core/scenario.mli: Metrics Params Simulator Wfs_channel Wireless_sched
