lib/core/fluid_ref.mli:
