lib/core/iwfq.ml: Array Fluid_ref List Option Params Queue Slot_queue Wfs_traffic Wireless_sched
