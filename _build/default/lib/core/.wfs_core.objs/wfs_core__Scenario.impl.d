lib/core/scenario.ml: Array List Option Params Presets Printf Simulator String Wfs_channel Wfs_traffic Wfs_util Wps
