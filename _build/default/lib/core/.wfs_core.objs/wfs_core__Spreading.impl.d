lib/core/spreading.ml: Array
