lib/core/fairness.ml: Array Float Metrics Wireless_sched
