lib/core/slot_queue.ml: Float List
