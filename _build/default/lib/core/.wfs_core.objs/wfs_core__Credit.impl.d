lib/core/credit.ml:
