lib/core/wps.mli: Params Wfs_sim Wireless_sched
