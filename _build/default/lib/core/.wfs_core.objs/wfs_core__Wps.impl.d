lib/core/wps.ml: Array Credit Float List Params Queue Spreading Wfs_sim Wfs_traffic Wfs_util Wireless_sched
