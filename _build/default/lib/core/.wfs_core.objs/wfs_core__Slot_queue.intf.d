lib/core/slot_queue.mli:
