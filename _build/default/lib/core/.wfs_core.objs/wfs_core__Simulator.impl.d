lib/core/simulator.ml: Array List Metrics Params Printf Wfs_channel Wfs_sim Wfs_traffic Wireless_sched
