lib/core/wireless_sched.mli: Wfs_traffic
