lib/core/fluid_ref.ml: Array Float
