lib/core/metrics.mli:
