lib/core/params.ml: Array Stdlib
