lib/core/iwfq.mli: Fluid_ref Params Wireless_sched
