lib/core/params.mli:
