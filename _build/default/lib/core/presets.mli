(** The paper's simulation scenarios (Examples 1–6) and scheduler variants.

    Every example returns a fresh, seeded {!Simulator.flow_setup} array —
    sources and channels each own an independent PRNG stream split from the
    master seed, so two calls with the same seed produce the identical
    sample path.  Running several algorithms against setups built from the
    same seed therefore compares them under common random numbers, as the
    paper's tables do. *)

type algorithm =
  | Blind_wrr
  | Wrr
  | Noswap
  | Swapw
  | Swapa
  | Iwfq_alg
  | Cifq_alg  (** the CIF-Q successor (extension) *)
  | Csdps_alg  (** the CSDPS prior art (extension) *)

type info = Ideal | Predicted
(** Channel knowledge: [Ideal] = the "-I" rows (perfect state), [Predicted]
    = the "-P" rows (one-step prediction).  Blind WRR ignores this. *)

val algorithm_name : algorithm -> info -> string
(** Table row labels: "Blind WRR", "WRR-I", "SwapA-P", "IWFQ-I", ... *)

val predictor : algorithm -> info -> Wfs_channel.Predictor.kind

val scheduler :
  ?credit_limit:int ->
  ?debit_limit:int ->
  ?credit_per_frame:int ->
  ?limits:(int * int) array ->
  ?iwfq:Params.iwfq ->
  algorithm ->
  Params.flow array ->
  Wireless_sched.instance
(** Build the scheduler variant.  [credit_limit]/[debit_limit] default to
    the paper's 4/4; [limits] gives per-flow overrides (Example 6);
    [iwfq] configures the IWFQ variant. *)

val table1_algorithms : (algorithm * info) list
(** The nine rows of Tables 1–4, in paper order. *)

(** {1 Examples} *)

val example1 :
  ?sum:float -> ?drop:Params.drop_policy -> seed:int -> unit ->
  Simulator.flow_setup array
(** Example 1: two unit-weight flows.  Flow 0 is the paper's Source 1
    (MMPP, mean 0.2 pkt/slot; Gilbert–Elliott channel with [PG = 0.7] and
    burstiness [sum = pg + pe], default 0.1); flow 1 is Source 2 (CBR,
    interarrival 2; error-free channel).  Default drop policy:
    2 retransmissions. *)

val example2 : ?sum:float -> seed:int -> unit -> Simulator.flow_setup array
(** Example 2 = Example 1 with a 100-slot delay bound instead of the
    retransmission limit. *)

val example3 : seed:int -> unit -> Simulator.flow_setup array
(** Example 3: MMPP 0.2 / Poisson 0.25 / CBR 0.25 over channels
    (pg, pe) = (0.07, 0.03), (0.095, 0.005), (0.09, 0.01);
    2 retransmissions. *)

val example4 : seed:int -> unit -> Simulator.flow_setup array
(** Example 4: five flows — MMPP 0.08 (flows 0, 2, 4), saturated Poisson
    λ=8 (flows 1, 3); channels per Table 7; 2 retransmissions except
    flow 3 (0 retransmissions). *)

val example5 : seed:int -> unit -> Simulator.flow_setup array
(** Example 5 = Example 4 with the saturated sources slowed to λ=0.07
    (stable system). *)

val example6 : seed:int -> unit -> Simulator.flow_setup array
(** Example 6: four identical heavily loading flows plus one flow with a
    much worse, bursty channel; 200-slot delay bound.  Channel parameters
    follow the documented substitution (DESIGN.md): flows 0–3
    λ=0.22, (pg, pe) = (0.095, 0.005); flow 4 λ=0.07,
    (pg, pe) = (0.03, 0.07). *)

val example6_limits : d:int -> c:int -> (int * int) array
(** Per-flow (credit, debit) caps for Table 11's sweep: flows 0–3 get
    (4, [d]), flow 4 gets ([c], 4). *)

val flows_of : Simulator.flow_setup array -> Params.flow array
