let frame ~weights =
  let n = Array.length weights in
  let eff = Array.map (fun w -> if w < 0 then 0 else w) weights in
  let total = Array.fold_left ( + ) 0 eff in
  if total = 0 then [||]
  else begin
    let sent = Array.make n 0 in
    let out = Array.make total (-1) in
    let eps = 1e-9 in
    for pos = 0 to total - 1 do
      let v = float_of_int pos /. float_of_int total in
      (* Smallest finish tag among eligible slots; fall back to smallest
         finish overall (always non-empty: some flow has slots left). *)
      let consider restrict =
        let best = ref None in
        for i = 0 to n - 1 do
          if sent.(i) < eff.(i) then begin
            let w = float_of_int eff.(i) in
            let start = float_of_int sent.(i) /. w in
            let finish = float_of_int (sent.(i) + 1) /. w in
            if (not restrict) || start <= v +. eps then
              match !best with
              | Some (_, bf) when bf <= finish -> ()
              | Some _ | None -> best := Some (i, finish)
          end
        done;
        !best
      in
      let choice =
        match consider true with Some c -> Some c | None -> consider false
      in
      match choice with
      | Some (i, _) ->
          out.(pos) <- i;
          sent.(i) <- sent.(i) + 1
      | None -> assert false
    done;
    out
  end

let is_spread_of ~weights seq =
  let n = Array.length weights in
  let counts = Array.make n 0 in
  let ok = ref true in
  Array.iter
    (fun i -> if i < 0 || i >= n then ok := false else counts.(i) <- counts.(i) + 1)
    seq;
  !ok
  && Array.for_all2
       (fun w c -> c = if w < 0 then 0 else w)
       weights counts
