module Rng = Wfs_util.Rng
module Predictor = Wfs_channel.Predictor

type algorithm =
  | Blind_wrr
  | Wrr
  | Noswap
  | Swapw
  | Swapa
  | Iwfq_alg
  | Cifq_alg
  | Csdps_alg
type info = Ideal | Predicted

let algorithm_name alg info =
  let suffix = match info with Ideal -> "I" | Predicted -> "P" in
  match alg with
  | Blind_wrr -> "Blind WRR"
  | Wrr -> "WRR-" ^ suffix
  | Noswap -> "NoSwap-" ^ suffix
  | Swapw -> "SwapW-" ^ suffix
  | Swapa -> "SwapA-" ^ suffix
  | Iwfq_alg -> "IWFQ-" ^ suffix
  | Cifq_alg -> "CIF-Q-" ^ suffix
  | Csdps_alg -> "CSDPS"

let predictor alg info =
  match (alg, info) with
  | Blind_wrr, _ -> Predictor.Blind
  | _, Ideal -> Predictor.Perfect
  | _, Predicted -> Predictor.One_step

let scheduler ?(credit_limit = 4) ?(debit_limit = 4) ?credit_per_frame ?limits
    ?iwfq alg flows =
  match alg with
  | Iwfq_alg -> Iwfq.instance (Iwfq.create ?params:iwfq flows)
  | Cifq_alg -> Cifq.instance (Cifq.create flows)
  | Csdps_alg -> Csdps.instance (Csdps.create flows)
  | Blind_wrr -> Wps.instance (Wps.create ~params:Params.blind_wrr flows)
  | Wrr -> Wps.instance (Wps.create ~params:Params.wrr flows)
  | Noswap ->
      Wps.instance (Wps.create ~params:(Params.noswap ~credit_limit ()) ?limits flows)
  | Swapw ->
      Wps.instance (Wps.create ~params:(Params.swapw ~credit_limit ()) ?limits flows)
  | Swapa ->
      Wps.instance
        (Wps.create
           ~params:(Params.swapa ~credit_limit ~debit_limit ?credit_per_frame ())
           ?limits flows)

let table1_algorithms =
  [
    (Blind_wrr, Predicted);
    (Wrr, Ideal);
    (Noswap, Ideal);
    (Swapw, Ideal);
    (Swapa, Ideal);
    (Wrr, Predicted);
    (Noswap, Predicted);
    (Swapw, Predicted);
    (Swapa, Predicted);
  ]

(* Common random numbers: channels and sources are seeded by their position
   in a fixed split order, so the sample path depends only on [seed]. *)
let split_streams ~seed ~n =
  let master = Rng.create seed in
  Array.init (2 * n) (fun _ -> Rng.split master)

let make_setup flows sources channels =
  Array.mapi
    (fun i flow ->
      { Simulator.flow; source = sources.(i); channel = channels.(i) })
    flows

let example1 ?(sum = 0.1) ?(drop = Params.Retx_limit 2) ~seed () =
  let streams = split_streams ~seed ~n:2 in
  let flows =
    [|
      Params.flow ~id:0 ~weight:1. ~drop ();
      Params.flow ~id:1 ~weight:1. ~drop ();
    |]
  in
  let sources =
    [|
      Wfs_traffic.Mmpp.paper_source ~rng:streams.(0) ~mean_rate:0.2 ();
      Wfs_traffic.Cbr.create ~interarrival:2. ();
    |]
  in
  let channels =
    [|
      Wfs_channel.Gilbert_elliott.of_burstiness ~rng:streams.(2) ~good_prob:0.7
        ~sum ();
      Wfs_channel.Error_free.create ();
    |]
  in
  make_setup flows sources channels

let example2 ?sum ~seed () = example1 ?sum ~drop:(Params.Delay_bound 100) ~seed ()

let example3 ~seed () =
  let streams = split_streams ~seed ~n:3 in
  let drop = Params.Retx_limit 2 in
  let flows = Array.init 3 (fun id -> Params.flow ~id ~weight:1. ~drop ()) in
  let sources =
    [|
      Wfs_traffic.Mmpp.paper_source ~rng:streams.(0) ~mean_rate:0.2 ();
      Wfs_traffic.Poisson.create ~rng:streams.(1) ~rate:0.25;
      Wfs_traffic.Cbr.create ~interarrival:4. ();
    |]
  in
  let ge i pg pe =
    Wfs_channel.Gilbert_elliott.create ~rng:streams.(3 + i) ~pg ~pe ()
  in
  let channels = [| ge 0 0.07 0.03; ge 1 0.095 0.005; ge 2 0.09 0.01 |] in
  make_setup flows sources channels

(* Example 4 and 5 share the Table 7 channels; only the two Poisson rates
   differ.  Paper flow numbering: sources 1..5 map to flows 0..4. *)
let example45 ~poisson_rate ~seed () =
  let streams = split_streams ~seed ~n:5 in
  let drop i = if i = 3 then Params.Retx_limit 0 else Params.Retx_limit 2 in
  let flows =
    Array.init 5 (fun id -> Params.flow ~id ~weight:1. ~drop:(drop id) ())
  in
  let mmpp i = Wfs_traffic.Mmpp.paper_source ~rng:streams.(i) ~mean_rate:0.08 () in
  let poisson i = Wfs_traffic.Poisson.create ~rng:streams.(i) ~rate:poisson_rate in
  let sources = [| mmpp 0; poisson 1; mmpp 2; poisson 3; mmpp 4 |] in
  let ge i pg pe =
    Wfs_channel.Gilbert_elliott.create ~rng:streams.(5 + i) ~pg ~pe ()
  in
  let channels =
    [|
      ge 0 0.09 0.01;
      ge 1 0.095 0.005;
      ge 2 0.08 0.02;
      ge 3 0.07 0.03;
      ge 4 0.035 0.015;
    |]
  in
  make_setup flows sources channels

let example4 ~seed () = example45 ~poisson_rate:8.0 ~seed ()
let example5 ~seed () = example45 ~poisson_rate:0.07 ~seed ()

let example6 ~seed () =
  let streams = split_streams ~seed ~n:5 in
  let drop = Params.Delay_bound 200 in
  let flows = Array.init 5 (fun id -> Params.flow ~id ~weight:1. ~drop ()) in
  let sources =
    Array.init 5 (fun i ->
        let rate = if i = 4 then 0.07 else 0.22 in
        Wfs_traffic.Poisson.create ~rng:streams.(i) ~rate)
  in
  let channels =
    Array.init 5 (fun i ->
        let pg, pe = if i = 4 then (0.03, 0.07) else (0.095, 0.005) in
        Wfs_channel.Gilbert_elliott.create ~rng:streams.(5 + i) ~pg ~pe ())
  in
  make_setup flows sources channels

let example6_limits ~d ~c =
  Array.init 5 (fun i -> if i = 4 then (c, 4) else (4, d))

let flows_of setups = Array.map (fun s -> s.Simulator.flow) setups
