(** Per-flow slot queue — the tag side of Section 4.2's decoupling.

    IWFQ separates {e which packets} a flow holds (its packet queue) from
    {e when it may access the channel} (its slot queue).  Each arriving
    packet creates one logical slot stamped with WFQ start/finish tags; the
    flow's service tag is the finish tag of its head slot.  Packets may then
    be discarded by loss policies without the flow losing channel-access
    precedence: the slot queue always keeps the {e earliest} tags, so a
    lagging flow still wins the next good slot.

    Invariant maintained by callers (see {!Iwfq}): the slot queue and packet
    queue have equal length — a successful transmission pops both heads; a
    packet drop pops the packet plus the {e tail} slot; a lag-bound slot trim
    pops tail packets. *)

type slot = { mutable start : float; mutable finish : float }

type t

val create : weight:float -> t
(** [weight] is the flow's [r_i], used to compute finish tags
    ([F = S + 1/r_i] with packet size 1). *)

val length : t -> int
val is_empty : t -> bool

val add : t -> v:float -> slot
(** New slot for a packet arriving at virtual time [v]:
    [S = max(v, F_prev)], [F = S + 1/r].  Tags chain per equation (2)–(3). *)

val head : t -> slot option
(** Earliest slot (the flow's service tag is its [finish]). *)

val pop_front : t -> slot option
(** Consume the head slot (successful transmission). *)

val pop_back : t -> slot option
(** Discard the most recent slot (paired with a packet drop so the flow
    keeps its earliest tags). *)

val lagging_count : t -> v:float -> int
(** Number of slots with finish tag strictly below [v] (a prefix, since
    tags are non-decreasing). *)

val trim_lagging : t -> v:float -> max_lagging:int -> int
(** Enforce the per-flow lag bound (Section 4.1 step 4a): if more than
    [max_lagging] slots lag behind [v], retain the [max_lagging]
    lowest-tagged ones and delete the rest of the lagging prefix.  Returns
    the number of slots deleted. *)

val clamp_lead : t -> v:float -> max_lead:float -> weight:float -> bool
(** Enforce the lead bound (Section 4.1 step 4b): if the head slot's start
    tag exceeds [v + max_lead/weight], reset it to exactly that and its
    finish tag to [start + 1/weight].  Returns [true] if clamped. *)

val to_list : t -> slot list
(** Front to back. *)
