(** Fairness measures for scheduler comparisons.

    The paper's fairness definition (equation 1) requires the {e normalised
    service} [W_i(t1,t2)/r_i] of continuously backlogged flows to be equal
    over any interval.  This module measures how far a packetized, errored
    schedule deviates from that ideal:

    - {!jain} — Jain's fairness index over per-flow normalised service
      (1 = perfectly fair, 1/n = maximally unfair);
    - {!max_normalized_gap} — the worst pairwise
      [|W_i/r_i − W_j/r_j|] over an interval, the quantity equation (1)
      sets to zero;
    - {!Monitor} — an observer that samples both over sliding windows of a
      live simulation, restricted to flows that stayed backlogged through
      the window (the only flows the definition constrains). *)

val jain : float array -> float
(** Jain's index [(Σx)² / (n·Σx²)] over non-negative values; 1.0 for an
    empty or all-zero array (vacuously fair). *)

val max_normalized_gap : weights:float array -> service:float array -> float
(** Worst pairwise normalised-service difference.  Arrays must have equal
    length ≥ 1. *)

module Monitor : sig
  type t

  val create :
    weights:float array ->
    window:int ->
    sched:Wireless_sched.instance ->
    t
  (** Samples windows of [window] slots.  A window contributes a sample
      only if at least two flows were backlogged at every slot of the
      window; service is counted in delivered packets. *)

  val observer : t -> int -> Metrics.t -> unit
  (** Pass as [Simulator.config ~observer].  Reads per-flow delivered
      counts from the metrics and backlog from the scheduler. *)

  val windows_sampled : t -> int

  val mean_jain : t -> float
  (** Mean Jain index over sampled windows; 1.0 when nothing sampled. *)

  val worst_gap : t -> float
  (** Largest normalised-service gap seen in any sampled window, in
      packets-per-unit-weight; 0 when nothing sampled. *)
end
