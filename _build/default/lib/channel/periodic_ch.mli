(** Deterministic periodic channel patterns.

    Used for worst-case constructions: Section 7 describes a pathological
    flow whose channel is bad exactly in its own scheduled slots and good in
    between — WPS starves it while IWFQ does not.  Also handy for exact
    expectations in unit tests. *)

val create : pattern:Channel.state array -> Channel.t
(** [create ~pattern] repeats [pattern] forever ([pattern.(slot mod n)]).
    @raise Invalid_argument on an empty pattern. *)

val bad_every : period:int -> offset:int -> Channel.t
(** Bad exactly in slots congruent to [offset] mod [period], good elsewhere.
    [period] must be positive. *)

val bad_burst : start:int -> length:int -> Channel.t
(** A single bad burst covering slots [start .. start+length-1]; good
    elsewhere (non-periodic). *)
