(** Memoryless channel: each slot is independently Good with probability
    [good_prob].  Equivalent to Gilbert–Elliott with [pg + pe = 1]; kept as
    its own module because Table 3 singles the memoryless case out as the
    regime where one-step prediction fails. *)

val create : rng:Wfs_util.Rng.t -> good_prob:float -> Channel.t
(** [good_prob] must lie in [\[0,1\]]. *)
