let create () = Channel.make ~label:"error-free" (fun _slot -> Channel.Good)
