let create ?(default = Channel.Good) entries =
  let tbl = Hashtbl.create 16 in
  List.iter (fun (slot, st) -> Hashtbl.replace tbl slot st) entries;
  Channel.make ~label:"trace" ~initial:default (fun slot ->
      Option.value ~default (Hashtbl.find_opt tbl slot))

let of_bad_slots slots = create (List.map (fun s -> (s, Channel.Bad)) slots)

let record ch ~slots =
  Array.init slots (fun slot -> Channel.advance ch ~slot)
