(** Always-good channel (a wireline-like link, e.g. Example 1's Source 2). *)

val create : unit -> Channel.t
