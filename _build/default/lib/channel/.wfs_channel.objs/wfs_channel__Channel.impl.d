lib/channel/channel.ml: Format Printf
