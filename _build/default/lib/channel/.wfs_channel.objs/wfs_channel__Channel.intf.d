lib/channel/channel.mli: Format
