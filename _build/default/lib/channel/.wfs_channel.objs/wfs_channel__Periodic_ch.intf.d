lib/channel/periodic_ch.mli: Channel
