lib/channel/trace_ch.mli: Channel
