lib/channel/bernoulli_ch.mli: Channel Wfs_util
