lib/channel/predictor.mli: Channel
