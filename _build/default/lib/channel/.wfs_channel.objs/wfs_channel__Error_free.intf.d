lib/channel/error_free.mli: Channel
