lib/channel/markov_ch.mli: Channel Wfs_util
