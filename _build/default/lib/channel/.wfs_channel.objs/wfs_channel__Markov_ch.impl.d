lib/channel/markov_ch.ml: Array Channel Printf Wfs_util
