lib/channel/bernoulli_ch.ml: Channel Printf Wfs_util
