lib/channel/predictor.ml: Channel Printf
