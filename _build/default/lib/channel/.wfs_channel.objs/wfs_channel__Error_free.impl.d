lib/channel/error_free.ml: Channel
