lib/channel/trace_ch.ml: Array Channel Hashtbl List Option
