lib/channel/gilbert_elliott.mli: Channel Wfs_util
