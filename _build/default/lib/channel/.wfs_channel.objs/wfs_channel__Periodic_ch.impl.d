lib/channel/periodic_ch.ml: Array Channel Printf
