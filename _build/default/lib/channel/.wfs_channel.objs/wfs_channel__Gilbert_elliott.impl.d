lib/channel/gilbert_elliott.ml: Channel Printf Wfs_util
