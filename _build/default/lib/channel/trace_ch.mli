(** Trace-driven channel: replays an explicit slot → state map.

    Lets tests and what-if experiments pin the exact error sample path (for
    example to compare two schedulers on identical channel realisations). *)

val create : ?default:Channel.state -> (int * Channel.state) list -> Channel.t
(** Slots absent from the list take [default] (default [Good]). *)

val of_bad_slots : int list -> Channel.t
(** Bad exactly in the listed slots. *)

val record :
  Channel.t -> slots:int -> Channel.state array
(** [record ch ~slots] advances a fresh channel through [slots] slots and
    returns the realised states — useful to replay one realisation across
    several schedulers via {!create}. *)
