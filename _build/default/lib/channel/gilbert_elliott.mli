(** Two-state Markov (Gilbert–Elliott) channel — the paper's error model.

    Transition probabilities follow the paper's convention:
    - [pg] = P(next slot Good | current slot Bad)
    - [pe] = P(next slot Bad  | current slot Good)

    Steady state: [PG = pg / (pg + pe)], [PE = pe / (pg + pe)].  The one-step
    autocovariance is [PG·PE·(1 − (pg+pe))]: the smaller [pg + pe], the
    burstier the errors; [pg + pe = 1] degenerates to i.i.d. Bernoulli
    states (Table 3's adversarial case for one-step prediction). *)

val create :
  rng:Wfs_util.Rng.t -> pg:float -> pe:float -> ?start_good:bool -> unit -> Channel.t
(** [start_good] defaults to a draw from the steady-state distribution.
    Requires [pg, pe] in [\[0,1\]] with [pg + pe > 0]. *)

val steady_state_good : pg:float -> pe:float -> float
(** [PG = pg / (pg + pe)]. *)

val of_burstiness :
  rng:Wfs_util.Rng.t -> good_prob:float -> sum:float -> unit -> Channel.t
(** The parameterisation used throughout Example 1: fix [PG = good_prob] and
    the burstiness knob [sum = pg + pe], giving [pg = PG·sum] and
    [pe = PE·sum].  Requires [good_prob] in (0,1) and
    [0 < sum ≤ min(1/PG, 1/PE)] so both probabilities stay in [0,1]. *)
