(** General finite-state Markov channel.

    Generalises {!Gilbert_elliott} to [n] states, each with its own
    per-slot probability that a transmission succeeds — e.g. a
    good/shadowed/deep-fade model.  The slot is Good if an independent
    Bernoulli draw with the current state's success probability comes up
    true, so a state can be "mostly good" rather than all-or-nothing. *)

type spec = {
  transition : float array array;
      (** row-stochastic matrix: [transition.(i).(j)] = P(next state j |
          current state i) *)
  good_prob : float array;  (** per-state success probability *)
}

val validate : spec -> unit
(** @raise Invalid_argument unless the matrix is square, row-stochastic
    (within 1e-9), matches [good_prob]'s length, and all probabilities lie
    in [\[0,1\]]. *)

val create : rng:Wfs_util.Rng.t -> ?start:int -> spec -> Channel.t
(** [start] defaults to state 0. *)

val stationary : spec -> float array
(** Stationary distribution of the chain (power iteration; the chain should
    be irreducible and aperiodic for this to converge). *)

val steady_state_good : spec -> float
(** Long-run fraction of Good slots: [Σ π_i · good_prob_i]. *)

val of_gilbert_elliott : pg:float -> pe:float -> spec
(** The paper's two-state model as a [spec]: state 0 = Good (success 1),
    state 1 = Bad (success 0). *)
