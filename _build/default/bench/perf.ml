(* Bechamel micro-benchmarks: per-operation cost of the scheduler decision
   paths and the supporting data structures.  One Test.make per measured
   operation; results print as ns/op. *)

open Bechamel
open Toolkit
module Core = Wfs_core

(* A steady-state WPS cell stepped one slot per run. *)
let wps_step_test ~name ~params ~n_flows =
  let flows =
    Array.init n_flows (fun id -> Core.Params.flow ~id ~weight:1. ())
  in
  let wps = Core.Wps.create ~params flows in
  let sched = Core.Wps.instance wps in
  let rng = Wfs_util.Rng.create 7 in
  let slot = ref 0 in
  let seq = ref 0 in
  Test.make ~name
    (Staged.stage (fun () ->
         let s = !slot in
         incr slot;
         (* Keep roughly one arrival per slot so queues stay small. *)
         let flow = Wfs_util.Rng.int rng n_flows in
         sched.enqueue ~slot:s
           (Wfs_traffic.Packet.make ~flow ~seq:!seq ~arrival:s ());
         incr seq;
         let predicted_good f = (f + s) mod 7 <> 0 in
         (match sched.select ~slot:s ~predicted_good with
         | Some f -> sched.complete ~flow:f
         | None -> ());
         sched.on_slot_end ~slot:s))

let iwfq_step_test ~n_flows =
  let flows =
    Array.init n_flows (fun id -> Core.Params.flow ~id ~weight:1. ())
  in
  let iwfq = Core.Iwfq.create flows in
  let sched = Core.Iwfq.instance iwfq in
  let rng = Wfs_util.Rng.create 8 in
  let slot = ref 0 in
  let seq = ref 0 in
  Test.make ~name:(Printf.sprintf "iwfq-slot-%dflows" n_flows)
    (Staged.stage (fun () ->
         let s = !slot in
         incr slot;
         let flow = Wfs_util.Rng.int rng n_flows in
         sched.enqueue ~slot:s
           (Wfs_traffic.Packet.make ~flow ~seq:!seq ~arrival:s ());
         incr seq;
         let predicted_good f = (f + s) mod 7 <> 0 in
         (match sched.select ~slot:s ~predicted_good with
         | Some f -> sched.complete ~flow:f
         | None -> ());
         sched.on_slot_end ~slot:s))

let spreading_test ~n_flows =
  let weights = Array.init n_flows (fun i -> 1 + (i mod 3)) in
  Test.make ~name:(Printf.sprintf "spreading-frame-%dflows" n_flows)
    (Staged.stage (fun () -> ignore (Core.Spreading.frame ~weights)))

let gps_test () =
  let flows = Wfs_wireline.Flow.equal_weights 8 in
  let gps = Wfs_wireline.Gps.create ~capacity:1. flows in
  let rng = Wfs_util.Rng.create 9 in
  let t = ref 0. in
  Test.make ~name:"gps-arrive+advance"
    (Staged.stage (fun () ->
         t := !t +. 0.2;
         ignore
           (Wfs_wireline.Gps.arrive gps ~time:!t ~flow:(Wfs_util.Rng.int rng 8)
              ~size:1.)))

let heap_test () =
  let h = Wfs_util.Heap.create ~leq:(fun (a : float) b -> a <= b) () in
  let rng = Wfs_util.Rng.create 10 in
  for _ = 1 to 1000 do
    Wfs_util.Heap.push h (Wfs_util.Rng.float rng)
  done;
  Test.make ~name:"heap-push+pop@1000"
    (Staged.stage (fun () ->
         Wfs_util.Heap.push h (Wfs_util.Rng.float rng);
         ignore (Wfs_util.Heap.pop h)))

let channel_test () =
  let ch =
    Wfs_channel.Gilbert_elliott.create ~rng:(Wfs_util.Rng.create 11) ~pg:0.07
      ~pe:0.03 ()
  in
  let slot = ref 0 in
  Test.make ~name:"gilbert-elliott-advance"
    (Staged.stage (fun () ->
         ignore (Wfs_channel.Channel.advance ch ~slot:!slot);
         incr slot))

let all_tests () =
  [
    wps_step_test ~name:"wps-swapa-slot-2flows" ~params:(Core.Params.swapa ())
      ~n_flows:2;
    wps_step_test ~name:"wps-swapa-slot-16flows" ~params:(Core.Params.swapa ())
      ~n_flows:16;
    wps_step_test ~name:"wps-wrr-slot-16flows" ~params:Core.Params.wrr
      ~n_flows:16;
    iwfq_step_test ~n_flows:2;
    iwfq_step_test ~n_flows:16;
    spreading_test ~n_flows:16;
    spreading_test ~n_flows:64;
    gps_test ();
    heap_test ();
    channel_test ();
  ]

let run () =
  let tests = all_tests () in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:(Some 10) ()
  in
  let table =
    Wfs_util.Tablefmt.create ~title:"Micro-benchmarks (per-operation cost)"
      ~columns:[ "operation"; "ns/op" ]
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let analyzed = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          let ns =
            match Analyze.OLS.estimates ols_result with
            | Some [ x ] -> x
            | Some _ | None -> nan
          in
          Wfs_util.Tablefmt.add_row table
            [ name; Wfs_util.Tablefmt.cell_of_float ns ])
        analyzed)
    tests;
  Wfs_util.Tablefmt.print table
