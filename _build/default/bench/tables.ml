(* Regeneration of every evaluation table in the paper (Tables 1-11).
   Parameter tables 5, 7 and 10 are inputs and are printed alongside their
   result tables.  Measured tables print next to the published reference so
   the shape (orderings, ratios, crossovers) can be compared directly. *)

module Core = Wfs_core
module P = Core.Presets
module T = Wfs_util.Tablefmt
module M = Core.Metrics

type opts = { horizon : int; seed : int }

let cell = T.cell_of_float

let run_setups ?limits ~opts ~setups alg info =
  let flows = P.flows_of setups in
  let sched = P.scheduler ?limits alg flows in
  let cfg =
    Core.Simulator.config ~predictor:(P.predictor alg info) ~horizon:opts.horizon
      setups
  in
  Core.Simulator.run cfg sched

(* The 9-algorithm, 2-flow grid of Tables 1-4 (plus IWFQ rows, which the
   paper defines but does not simulate). *)
let example1_grid ~opts ~title make_setups =
  let t =
    T.create ~title
      ~columns:[ "alg"; "d1"; "l1"; "dmax1"; "sd1"; "d2"; "l2"; "dmax2"; "sd2" ]
  in
  let algorithms = P.table1_algorithms @ [ (P.Iwfq_alg, P.Ideal); (P.Iwfq_alg, P.Predicted) ] in
  List.iter
    (fun (alg, info) ->
      let m = run_setups ~opts ~setups:(make_setups ()) alg info in
      T.add_row t
        [
          P.algorithm_name alg info;
          cell (M.mean_delay m ~flow:0);
          cell ~decimals:3 (M.loss m ~flow:0);
          cell (M.max_delay m ~flow:0);
          cell (M.stddev_delay m ~flow:0);
          cell (M.mean_delay m ~flow:1);
          cell ~decimals:3 (M.loss m ~flow:1);
          cell (M.max_delay m ~flow:1);
          cell (M.stddev_delay m ~flow:1);
        ])
    algorithms;
  T.print t

let table1 ~opts =
  example1_grid ~opts
    ~title:
      (Printf.sprintf "Table 1 (measured): Example 1, pg+pe = 0.1, %d slots"
         opts.horizon)
    (fun () -> P.example1 ~sum:0.1 ~seed:opts.seed ());
  print_newline ();
  Paper_ref.print Paper_ref.table1

let table2 ~opts =
  example1_grid ~opts
    ~title:
      (Printf.sprintf "Table 2 (measured): Example 1, pg+pe = 0.5, %d slots"
         opts.horizon)
    (fun () -> P.example1 ~sum:0.5 ~seed:opts.seed ());
  print_newline ();
  Paper_ref.print Paper_ref.table2

let table3 ~opts =
  example1_grid ~opts
    ~title:
      (Printf.sprintf
         "Table 3 (measured): Example 1, pg+pe = 1.0 (memoryless), %d slots"
         opts.horizon)
    (fun () -> P.example1 ~sum:1.0 ~seed:opts.seed ());
  print_newline ();
  Paper_ref.print Paper_ref.table3

let table4 ~opts =
  example1_grid ~opts
    ~title:
      (Printf.sprintf
         "Table 4 (measured): Example 2 (delay bound 100), pg+pe = 0.1, %d slots"
         opts.horizon)
    (fun () -> P.example2 ~sum:0.1 ~seed:opts.seed ());
  print_newline ();
  Paper_ref.print Paper_ref.table4

let print_params ~title rows =
  let t = T.create ~title ~columns:[ "source"; "rate"; "pg"; "pe" ] in
  List.iter (T.add_row t) rows;
  T.print t

let table6 ~opts =
  print_params ~title:"Table 5 (inputs): Example 3 source/channel parameters"
    [
      [ "1 (MMPP)"; "0.2"; "0.07"; "0.03" ];
      [ "2 (Poisson)"; "0.25"; "0.095"; "0.005" ];
      [ "3 (CBR)"; "0.25"; "0.09"; "0.01" ];
    ];
  print_newline ();
  let t =
    T.create
      ~title:(Printf.sprintf "Table 6 (measured): Example 3, %d slots" opts.horizon)
      ~columns:[ "alg"; "d1"; "l1"; "d2"; "l2"; "d3"; "l3" ]
  in
  List.iter
    (fun (alg, info) ->
      let m = run_setups ~opts ~setups:(P.example3 ~seed:opts.seed ()) alg info in
      T.add_row t
        ([ P.algorithm_name alg info ]
        @ List.concat_map
            (fun flow ->
              [ cell (M.mean_delay m ~flow); cell ~decimals:3 (M.loss m ~flow) ])
            [ 0; 1; 2 ]))
    [ (P.Blind_wrr, P.Predicted); (P.Wrr, P.Predicted); (P.Swapa, P.Predicted) ];
  T.print t;
  print_newline ();
  Paper_ref.print Paper_ref.table6

let table8 ~opts =
  print_params ~title:"Table 7 (inputs): Example 4 source/channel parameters"
    [
      [ "1 (MMPP)"; "0.08"; "0.09"; "0.01" ];
      [ "2 (Poisson)"; "8.0"; "0.095"; "0.005" ];
      [ "3 (MMPP)"; "0.08"; "0.08"; "0.02" ];
      [ "4 (Poisson)"; "8.0"; "0.07"; "0.03" ];
      [ "5 (MMPP)"; "0.08"; "0.035"; "0.015" ];
    ];
  print_newline ();
  let t =
    T.create
      ~title:(Printf.sprintf "Table 8 (measured): Example 4, %d slots" opts.horizon)
      ~columns:[ "alg"; "d1"; "l1"; "l2"; "d3"; "l3"; "l4"; "d5"; "l5" ]
  in
  let algorithms = P.table1_algorithms in
  List.iter
    (fun (alg, info) ->
      let m = run_setups ~opts ~setups:(P.example4 ~seed:opts.seed ()) alg info in
      (* Paper source numbering: sources 1..5 = flows 0..4.  The saturated
         sources 2 and 4 report the per-attempt drop share (their arrivals
         exceed capacity, so per-arrival loss is meaningless — the paper's
         own framing). *)
      T.add_row t
        [
          P.algorithm_name alg info;
          cell (M.mean_delay m ~flow:0);
          cell ~decimals:3 (M.loss m ~flow:0);
          cell ~decimals:3 (M.drop_share m ~flow:1);
          cell (M.mean_delay m ~flow:2);
          cell ~decimals:3 (M.loss m ~flow:2);
          cell ~decimals:3 (M.drop_share m ~flow:3);
          cell (M.mean_delay m ~flow:4);
          cell ~decimals:3 (M.loss m ~flow:4);
        ])
    algorithms;
  T.print t;
  print_newline ();
  Paper_ref.print Paper_ref.table8

let table9 ~opts =
  let t =
    T.create
      ~title:(Printf.sprintf "Table 9 (measured): Example 5, %d slots" opts.horizon)
      ~columns:[ "alg"; "d1"; "l1"; "d2"; "l2"; "d3"; "l3"; "d4"; "l4"; "d5"; "l5" ]
  in
  List.iter
    (fun (alg, info) ->
      let m = run_setups ~opts ~setups:(P.example5 ~seed:opts.seed ()) alg info in
      T.add_row t
        ([ P.algorithm_name alg info ]
        @ List.concat_map
            (fun flow ->
              [ cell (M.mean_delay m ~flow); cell ~decimals:3 (M.loss m ~flow) ])
            [ 0; 1; 2; 3; 4 ]))
    [ (P.Wrr, P.Predicted); (P.Swapa, P.Predicted) ];
  T.print t;
  print_newline ();
  Paper_ref.print Paper_ref.table9

let table11 ~opts =
  print_params
    ~title:
      "Table 10 (inputs): Example 6 parameters (substituted; see DESIGN.md)"
    [
      [ "1-4 (Poisson)"; "0.22"; "0.095"; "0.005" ];
      [ "5 (Poisson)"; "0.07"; "0.03"; "0.07" ];
    ];
  print_newline ();
  let t =
    T.create
      ~title:
        (Printf.sprintf
           "Table 11 (measured): Example 6 credit/debit sweep, %d slots"
           opts.horizon)
      ~columns:[ "alg"; "D"; "C"; "d1"; "l1"; "sd1"; "d5"; "l5"; "sd5" ]
  in
  let add_row name d c m =
    T.add_row t
      [
        name;
        d;
        c;
        cell (M.mean_delay m ~flow:0);
        cell ~decimals:3 (M.loss m ~flow:0);
        cell (M.stddev_delay m ~flow:0);
        cell (M.mean_delay m ~flow:4);
        cell ~decimals:3 (M.loss m ~flow:4);
        cell (M.stddev_delay m ~flow:4);
      ]
  in
  let wrr =
    run_setups ~opts ~setups:(P.example6 ~seed:opts.seed ()) P.Wrr P.Predicted
  in
  add_row "WRR-P" "-" "-" wrr;
  List.iter
    (fun (d, c) ->
      let m =
        run_setups
          ~limits:(P.example6_limits ~d ~c)
          ~opts
          ~setups:(P.example6 ~seed:opts.seed ())
          P.Swapa P.Predicted
      in
      add_row "SwapA-P" (string_of_int d) (string_of_int c) m)
    [ (4, 4); (2, 4); (0, 4); (0, 1) ];
  T.print t;
  print_newline ();
  Paper_ref.print Paper_ref.table11

(* --- Ablations beyond the paper's tables --- *)

let ablation_amortized_credit ~opts =
  (* Section 7's amortised-compensation extension: capping per-frame credit
     redemption smooths the clean flow's delay at small cost to the
     recovering flow. *)
  let t =
    T.create
      ~title:
        (Printf.sprintf
           "Ablation: per-frame credit redemption cap (Example 1, pg+pe=0.1, %d slots)"
           opts.horizon)
      ~columns:[ "redeem cap"; "d1"; "dmax1"; "d2"; "dmax2"; "sd2" ]
  in
  List.iter
    (fun cap ->
      let setups = P.example1 ~sum:0.1 ~seed:opts.seed () in
      let flows = P.flows_of setups in
      let sched =
        Core.Wps.instance
          (Core.Wps.create
             ~params:(Core.Params.swapa ?credit_per_frame:cap ())
             flows)
      in
      let cfg =
        Core.Simulator.config ~predictor:Wfs_channel.Predictor.One_step
          ~horizon:opts.horizon setups
      in
      let m = Core.Simulator.run cfg sched in
      T.add_row t
        [
          (match cap with None -> "none" | Some k -> string_of_int k);
          cell (M.mean_delay m ~flow:0);
          cell (M.max_delay m ~flow:0);
          cell (M.mean_delay m ~flow:1);
          cell (M.max_delay m ~flow:1);
          cell (M.stddev_delay m ~flow:1);
        ])
    [ None; Some 2; Some 1 ];
  T.print t

let ablation_iwfq_vs_wps ~opts =
  (* IWFQ vs full WPS across burstiness regimes: average-case closeness
     (the paper's closing observation). *)
  let t =
    T.create
      ~title:
        (Printf.sprintf "Ablation: IWFQ vs WPS across burstiness (%d slots)"
           opts.horizon)
      ~columns:[ "pg+pe"; "IWFQ d1"; "SwapA d1"; "IWFQ d2"; "SwapA d2" ]
  in
  List.iter
    (fun sum ->
      let d alg =
        let m =
          run_setups ~opts ~setups:(P.example1 ~sum ~seed:opts.seed ()) alg
            P.Predicted
        in
        (M.mean_delay m ~flow:0, M.mean_delay m ~flow:1)
      in
      let i1, i2 = d P.Iwfq_alg in
      let s1, s2 = d P.Swapa in
      T.add_row t [ cell sum; cell i1; cell s1; cell i2; cell s2 ])
    [ 0.1; 0.25; 0.5; 0.75; 1.0 ];
  T.print t

let ablation_snoop_period ~opts =
  (* Section 6.1's proposed extension: periodic snooping trades prediction
     accuracy (delay/loss) for monitoring duty cycle. *)
  let t =
    T.create
      ~title:
        (Printf.sprintf
           "Ablation: periodic-snoop prediction (Example 1, pg+pe=0.1, %d slots)"
           opts.horizon)
      ~columns:[ "snoop period"; "d1"; "l1"; "duty cycle" ]
  in
  List.iter
    (fun period ->
      let setups = P.example1 ~sum:0.1 ~seed:opts.seed () in
      let flows = P.flows_of setups in
      let sched = P.scheduler P.Swapa flows in
      let predictor =
        if period = 1 then Wfs_channel.Predictor.One_step
        else Wfs_channel.Predictor.Periodic_snoop period
      in
      let cfg = Core.Simulator.config ~predictor ~horizon:opts.horizon setups in
      let m = Core.Simulator.run cfg sched in
      T.add_row t
        [
          string_of_int period;
          cell (M.mean_delay m ~flow:0);
          cell ~decimals:3 (M.loss m ~flow:0);
          Printf.sprintf "1/%d" period;
        ])
    [ 1; 2; 4; 8; 16 ];
  T.print t

let series_burstiness ~opts =
  (* A figure the paper implies but never plots: the errored flow's mean
     delay as a function of channel burstiness (pg+pe), per scheduler, with
     PG fixed at 0.7.  Regenerates as a CSV-like series for plotting. *)
  let t =
    T.create
      ~title:
        (Printf.sprintf
           "Series: Example-1 flow-1 mean delay vs burstiness (PG=0.7, %d slots)"
           opts.horizon)
      ~columns:[ "pg+pe"; "WRR-P"; "NoSwap-P"; "SwapA-P"; "IWFQ-P"; "Blind loss" ]
  in
  List.iter
    (fun sum ->
      let d alg info =
        let m =
          run_setups ~opts ~setups:(P.example1 ~sum ~seed:opts.seed ()) alg info
        in
        M.mean_delay m ~flow:0
      in
      let blind_loss =
        let m =
          run_setups ~opts
            ~setups:(P.example1 ~sum ~seed:opts.seed ())
            P.Blind_wrr P.Predicted
        in
        M.loss m ~flow:0
      in
      T.add_row t
        [
          cell sum;
          cell (d P.Wrr P.Predicted);
          cell (d P.Noswap P.Predicted);
          cell (d P.Swapa P.Predicted);
          cell (d P.Iwfq_alg P.Predicted);
          cell ~decimals:3 blind_loss;
        ])
    [ 0.05; 0.1; 0.2; 0.35; 0.5; 0.75; 1.0 ];
  T.print t

let mac_overhead ~opts =
  (* MAC integration: scheduling through the Section-6 MAC (uplink
     invisibility + control slots) vs the oracle scheduler evaluation. *)
  let rng = Wfs_util.Rng.create opts.seed in
  let ge seed pg pe =
    Wfs_channel.Gilbert_elliott.create ~rng:(Wfs_util.Rng.create seed) ~pg ~pe ()
  in
  let up host = { Wfs_mac.Frame.host; direction = Wfs_mac.Frame.Uplink; index = 0 } in
  (* Data flows get weight 8 so the unit-weight control flow costs ~6% of
     capacity instead of a third. *)
  let flows =
    [|
      {
        Wfs_mac.Mac_sim.addr = up 1;
        weight = 8.;
        source = Wfs_traffic.Mmpp.paper_source ~rng:(Wfs_util.Rng.create 11) ~mean_rate:0.2 ();
        channel = ge 12 0.07 0.03;
        drop = Core.Params.Retx_limit 2;
      };
      {
        Wfs_mac.Mac_sim.addr = up 2;
        weight = 8.;
        source = Wfs_traffic.Cbr.create ~interarrival:2. ();
        channel = ge 13 0.095 0.005;
        drop = Core.Params.Retx_limit 2;
      };
    |]
  in
  let cfg = Wfs_mac.Mac_sim.config ~rng ~horizon:opts.horizon flows in
  let r = Wfs_mac.Mac_sim.run cfg in
  let m = r.Wfs_mac.Mac_sim.metrics in
  let t =
    T.create
      ~title:
        (Printf.sprintf "MAC integration: Example-1-like cell via Section-6 MAC (%d slots)"
           opts.horizon)
      ~columns:[ "metric"; "value" ]
  in
  T.add_row t [ "uplink 1 mean delay"; cell (M.mean_delay m ~flow:0) ];
  T.add_row t [ "uplink 1 loss"; cell ~decimals:4 (M.loss m ~flow:0) ];
  T.add_row t [ "uplink 2 mean delay"; cell (M.mean_delay m ~flow:1) ];
  T.add_row t [ "control slots"; string_of_int r.Wfs_mac.Mac_sim.control_slots ];
  T.add_row t [ "data slots"; string_of_int r.Wfs_mac.Mac_sim.data_slots ];
  T.add_row t [ "idle slots"; string_of_int r.Wfs_mac.Mac_sim.idle_slots ];
  T.add_row t
    [ "notification wins"; string_of_int r.Wfs_mac.Mac_sim.notifications_won ];
  T.add_row t
    [
      "notification collisions";
      string_of_int r.Wfs_mac.Mac_sim.notification_collisions;
    ];
  T.add_row t [ "piggyback reveals"; string_of_int r.Wfs_mac.Mac_sim.piggyback_reveals ];
  T.add_row t [ "mean reveal delay"; cell r.Wfs_mac.Mac_sim.mean_reveal_delay ];
  T.print t

let ablation_swap_window ~opts =
  (* How much of full-WPS performance does the MAC's three-slot
     advertisement pipeline retain?  Sweep the intra-frame swap reach on
     Example 4 (5 flows, so frames are long enough for the window to
     bind). *)
  let t =
    T.create
      ~title:
        (Printf.sprintf
           "Ablation: intra-frame swap window (Example 4, SwapA-P, %d slots)"
           opts.horizon)
      ~columns:[ "window"; "d1"; "d3"; "d5"; "idle slots" ]
  in
  List.iter
    (fun window ->
      let setups = P.example4 ~seed:opts.seed () in
      let flows = P.flows_of setups in
      let sched =
        Core.Wps.instance
          (Core.Wps.create ~params:(Core.Params.swapa ?swap_window:window ()) flows)
      in
      let cfg =
        Core.Simulator.config ~predictor:Wfs_channel.Predictor.One_step
          ~horizon:opts.horizon setups
      in
      let m = Core.Simulator.run cfg sched in
      T.add_row t
        [
          (match window with None -> "whole frame" | Some w -> string_of_int w);
          cell (M.mean_delay m ~flow:0);
          cell (M.mean_delay m ~flow:2);
          cell (M.mean_delay m ~flow:4);
          string_of_int (M.idle_slots m);
        ])
    [ Some 1; Some 3; Some 5; None ];
  T.print t

let ablation_successors ~opts =
  (* The research line the paper started: WPS vs IWFQ vs CIF-Q (its 1998
     successor with graceful degradation) vs the CSDPS prior art, on the
     Example 1 workload. *)
  let t =
    T.create
      ~title:
        (Printf.sprintf
           "Extension: lineage comparison on Example 1, pg+pe=0.1 (%d slots)"
           opts.horizon)
      ~columns:[ "scheduler"; "d1"; "dmax1"; "d2"; "dmax2"; "thpt1" ]
  in
  let run name make_sched =
    let setups = P.example1 ~sum:0.1 ~seed:opts.seed () in
    let flows = P.flows_of setups in
    let sched = make_sched flows in
    let cfg =
      Core.Simulator.config ~predictor:Wfs_channel.Predictor.One_step
        ~horizon:opts.horizon setups
    in
    let m = Core.Simulator.run cfg sched in
    T.add_row t
      [
        name;
        cell (M.mean_delay m ~flow:0);
        cell (M.max_delay m ~flow:0);
        cell (M.mean_delay m ~flow:1);
        cell (M.max_delay m ~flow:1);
        cell ~decimals:4 (M.throughput m ~flow:0 ~slots:opts.horizon);
      ]
  in
  run "CSDPS (prior art)" (fun flows -> Core.Csdps.instance (Core.Csdps.create flows));
  run "WPS (this paper)" (fun flows ->
      Core.Wps.instance (Core.Wps.create ~params:(Core.Params.swapa ()) flows));
  run "IWFQ (this paper)" (fun flows -> Core.Iwfq.instance (Core.Iwfq.create flows));
  run "CIF-Q a=0.9 (successor)" (fun flows ->
      Core.Cifq.instance (Core.Cifq.create ~alpha:0.9 flows));
  run "CIF-Q a=0.5" (fun flows ->
      Core.Cifq.instance (Core.Cifq.create ~alpha:0.5 flows));
  T.print t

let ablation_fairness ~opts =
  (* The paper's fairness criterion (equation 1) measured empirically:
     windowed normalised-service Jain index and worst gap per scheduler on
     two saturated flows whose channels differ (flow 0 clean, flow 1 bad
     half the time, bursty). *)
  let t =
    T.create
      ~title:
        (Printf.sprintf
           "Ablation: windowed fairness, saturated flows, asymmetric channels (%d slots)"
           (min opts.horizon 100_000))
      ~columns:[ "scheduler"; "windows"; "mean Jain"; "worst gap (pkts/weight)" ]
  in
  let horizon = min opts.horizon 100_000 in
  let run name make_sched =
    let flows = Array.init 2 (fun id -> Core.Params.flow ~id ~weight:1. ()) in
    let sched = make_sched flows in
    let monitor =
      Core.Fairness.Monitor.create ~weights:[| 1.; 1. |] ~window:100 ~sched
    in
    let master = Wfs_util.Rng.create opts.seed in
    let setups =
      Array.init 2 (fun i ->
          {
            Core.Simulator.flow = flows.(i);
            source = Wfs_traffic.Cbr.create ~interarrival:1. ();
            channel =
              (if i = 1 then
                 Wfs_channel.Gilbert_elliott.of_burstiness
                   ~rng:(Wfs_util.Rng.split master) ~good_prob:0.5 ~sum:0.1 ()
               else Wfs_channel.Error_free.create ());
          })
    in
    let cfg =
      Core.Simulator.config ~predictor:Wfs_channel.Predictor.One_step
        ~observer:(Core.Fairness.Monitor.observer monitor)
        ~horizon setups
    in
    ignore (Core.Simulator.run cfg sched);
    T.add_row t
      [
        name;
        string_of_int (Core.Fairness.Monitor.windows_sampled monitor);
        cell ~decimals:4 (Core.Fairness.Monitor.mean_jain monitor);
        cell (Core.Fairness.Monitor.worst_gap monitor);
      ]
  in
  run "WRR" (fun flows ->
      Core.Wps.instance (Core.Wps.create ~params:Core.Params.wrr flows));
  run "NoSwap" (fun flows ->
      Core.Wps.instance (Core.Wps.create ~params:(Core.Params.noswap ()) flows));
  run "SwapA (WPS)" (fun flows ->
      Core.Wps.instance (Core.Wps.create ~params:(Core.Params.swapa ()) flows));
  run "SwapA C=D=16" (fun flows ->
      Core.Wps.instance
        (Core.Wps.create
           ~params:(Core.Params.swapa ~credit_limit:16 ~debit_limit:16 ())
           flows));
  run "IWFQ" (fun flows -> Core.Iwfq.instance (Core.Iwfq.create flows));
  run "CSDPS (related work)" (fun flows ->
      Core.Csdps.instance (Core.Csdps.create flows));
  T.print t

let ablation_aloha ~opts =
  (* Section 6.2's suggested improvement: p-persistent ALOHA in the
     notification sub-slot vs the single-shot baseline, under contention
     pressure from many sporadic uplink flows. *)
  let t =
    T.create
      ~title:
        (Printf.sprintf
           "Ablation: notification contention policy, 12 sporadic uplinks (%d slots)"
           (min opts.horizon 50_000))
      ~columns:
        [ "policy"; "wins"; "collisions"; "mean reveal delay"; "mean delay f0" ]
  in
  let horizon = min opts.horizon 50_000 in
  let up host = { Wfs_mac.Frame.host; direction = Wfs_mac.Frame.Uplink; index = 0 } in
  let mk_flows () =
    Array.init 12 (fun i ->
        {
          Wfs_mac.Mac_sim.addr = up (i + 1);
          weight = 1.;
          source =
            Wfs_traffic.Onoff.create
              ~rng:(Wfs_util.Rng.create (opts.seed + i))
              ~p_on_to_off:0.5 ~p_off_to_on:0.01 ();
          channel = Wfs_channel.Error_free.create ();
          drop = Core.Params.No_drop;
        })
  in
  List.iter
    (fun (name, contention) ->
      let cfg =
        Wfs_mac.Mac_sim.config
          ~rng:(Wfs_util.Rng.create opts.seed)
          ~contention ~horizon (mk_flows ())
      in
      let r = Wfs_mac.Mac_sim.run cfg in
      T.add_row t
        [
          name;
          string_of_int r.Wfs_mac.Mac_sim.notifications_won;
          string_of_int r.Wfs_mac.Mac_sim.notification_collisions;
          cell r.Wfs_mac.Mac_sim.mean_reveal_delay;
          cell (M.mean_delay r.Wfs_mac.Mac_sim.metrics ~flow:0);
        ])
    [
      ("single-shot", Wfs_mac.Mac_sim.Single_shot);
      ("aloha p=0.75", Wfs_mac.Mac_sim.Aloha 0.75);
      ("aloha p=0.5", Wfs_mac.Mac_sim.Aloha 0.5);
      ("aloha p=0.25", Wfs_mac.Mac_sim.Aloha 0.25);
    ];
  T.print t

let seed_confidence ~opts =
  (* The tables above use one seed (common random numbers across
     algorithms).  This section quantifies seed sensitivity: Table 1's
     headline metrics across five seeds, mean ± stddev. *)
  let t =
    T.create
      ~title:
        (Printf.sprintf
           "Seed sensitivity: Example 1 (pg+pe=0.1), 5 seeds x %d slots"
           opts.horizon)
      ~columns:[ "metric"; "mean"; "stddev"; "min"; "max" ]
  in
  let seeds = [ 1; 2; 3; 4; 5 ] in
  let metric name f =
    let s = Wfs_util.Stats.Summary.create () in
    List.iter (fun seed -> Wfs_util.Stats.Summary.add s (f ~seed)) seeds;
    T.add_row t
      [
        name;
        cell (Wfs_util.Stats.Summary.mean s);
        cell (Wfs_util.Stats.Summary.stddev s);
        cell (Wfs_util.Stats.Summary.min s);
        cell (Wfs_util.Stats.Summary.max s);
      ]
  in
  let run alg info ~seed =
    run_setups ~opts:{ opts with seed } ~setups:(P.example1 ~sum:0.1 ~seed ())
      alg info
  in
  metric "WRR-P d1" (fun ~seed -> M.mean_delay (run P.Wrr P.Predicted ~seed) ~flow:0);
  metric "SwapA-P d1" (fun ~seed ->
      M.mean_delay (run P.Swapa P.Predicted ~seed) ~flow:0);
  metric "SwapA-P d2" (fun ~seed ->
      M.mean_delay (run P.Swapa P.Predicted ~seed) ~flow:1);
  metric "Blind WRR l1" (fun ~seed ->
      M.loss (run P.Blind_wrr P.Predicted ~seed) ~flow:0);
  T.print t

let bounds_check ~opts =
  (* Section 5 empirically: Fact 1 and the throughput/delay theorems on an
     Example-1 run. *)
  let t =
    T.create
      ~title:(Printf.sprintf "Section 5 bounds, verified empirically (%d slots)" (min opts.horizon 50_000))
      ~columns:[ "guarantee"; "samples"; "violations"; "worst slack" ]
  in
  let horizon = min opts.horizon 50_000 in
  let make_setups () = P.example1 ~sum:0.1 ~seed:opts.seed () in
  let add name (r : Wfs_bounds.Verify.report) =
    T.add_row t
      [
        name;
        string_of_int r.Wfs_bounds.Verify.samples;
        string_of_int r.Wfs_bounds.Verify.violations;
        cell r.Wfs_bounds.Verify.worst_slack;
      ]
  in
  add "Fact 1: aggregate lag <= B"
    (Wfs_bounds.Verify.check_fact1 ~horizon ~make_setups
       ~predictor:Wfs_channel.Predictor.Perfect ());
  add "Thm 2/6: long-term throughput (shift 600, uncapped lag)"
    (Wfs_bounds.Verify.check_long_term_throughput
       ~params:{ (Core.Params.iwfq_defaults ~n_flows:2) with lag_total = 1000. }
       ~horizon ~shift:600 ~make_setups
       ~predictor:Wfs_channel.Predictor.Perfect ~flow:0 ());
  add "Thm 1: error-free flow delay shift <= B+1"
    (Wfs_bounds.Verify.check_error_free_delay
       ~params:{ (Core.Params.iwfq_defaults ~n_flows:2) with lag_total = 8. }
       ~horizon ~make_setups ~predictor:Wfs_channel.Predictor.Perfect ~flow:1 ());
  add "Thm 3: new-queue delay of error-free flow"
    (Wfs_bounds.Verify.check_new_queue_delay ~horizon ~make_setups
       ~predictor:Wfs_channel.Predictor.Perfect ~flow:1 ());
  add "Thm 7: short-term throughput (100-slot windows)"
    (Wfs_bounds.Verify.check_short_term_throughput ~horizon ~window:100
       ~make_setups ~predictor:Wfs_channel.Predictor.Perfect ~flow:0 ());
  T.print t

let all ~opts =
  let section name f =
    Printf.printf "\n=== %s ===\n\n" name;
    f ~opts
  in
  section "Table 1" table1;
  section "Table 2" table2;
  section "Table 3" table3;
  section "Table 4" table4;
  section "Tables 5+6" table6;
  section "Tables 7+8" table8;
  section "Table 9" table9;
  section "Tables 10+11" table11;
  section "Ablation: amortised credits" ablation_amortized_credit;
  section "Ablation: IWFQ vs WPS" ablation_iwfq_vs_wps;
  section "Ablation: snoop period" ablation_snoop_period;
  section "Ablation: swap window" ablation_swap_window;
  section "Extension: lineage comparison" ablation_successors;
  section "Ablation: fairness" ablation_fairness;
  section "Ablation: notification contention" ablation_aloha;
  section "Series: burstiness sweep" series_burstiness;
  section "MAC integration" mac_overhead;
  section "Seed sensitivity" seed_confidence;
  section "Bounds verification" bounds_check
