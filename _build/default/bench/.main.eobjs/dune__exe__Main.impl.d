bench/main.ml: Array Perf Printf Sys Tables
