bench/perf.ml: Analyze Array Bechamel Benchmark Hashtbl Instance List Measure Printf Staged Test Time Toolkit Wfs_channel Wfs_core Wfs_traffic Wfs_util Wfs_wireline
