bench/paper_ref.ml: List Wfs_util
