bench/tables.ml: Array List Paper_ref Printf Wfs_bounds Wfs_channel Wfs_core Wfs_mac Wfs_traffic Wfs_util
