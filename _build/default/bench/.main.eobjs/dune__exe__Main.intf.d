bench/main.mli:
