(* Benchmark harness entry point.

   Default: regenerate every paper table (1-11), the ablations, the MAC
   integration figures and the Section-5 bound checks, then run the
   Bechamel micro-benchmarks.

   Arguments:
     --quick          shorter horizon (20k slots)
     --horizon N      explicit horizon in slots (default 200000)
     --seed N         PRNG seed (default 42)
     --tables-only    skip micro-benchmarks
     --perf-only      only micro-benchmarks *)

let () =
  let horizon = ref 200_000 in
  let seed = ref 42 in
  let tables = ref true in
  let perf = ref true in
  let args = Array.to_list Sys.argv in
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
        horizon := 20_000;
        parse rest
    | "--horizon" :: n :: rest ->
        horizon := int_of_string n;
        parse rest
    | "--seed" :: n :: rest ->
        seed := int_of_string n;
        parse rest
    | "--tables-only" :: rest ->
        perf := false;
        parse rest
    | "--perf-only" :: rest ->
        tables := false;
        parse rest
    | arg :: rest ->
        if arg <> Sys.argv.(0) then
          Printf.eprintf "warning: ignoring unknown argument %s\n%!" arg;
        parse rest
  in
  (match args with _ :: rest -> parse rest | [] -> ());
  let opts = { Tables.horizon = !horizon; seed = !seed } in
  Printf.printf
    "Wireless fair scheduling benchmarks (horizon=%d slots, seed=%d)\n"
    !horizon !seed;
  if !tables then Tables.all ~opts;
  if !perf then begin
    Printf.printf "\n=== Micro-benchmarks ===\n\n";
    Perf.run ()
  end
