(* Teleconference cell: the paper's motivating workload.

   A base station serves a multimedia teleconference: two delay-sensitive
   audio flows (CBR, strict delay budget), one adaptive video flow (on-off,
   higher rate, loss-tolerant) and one background file transfer (saturated).
   Each mobile perceives a different channel.  We compare plain WRR against
   full WPS and report the delay percentiles that matter for interactive
   audio.

   Run with: dune exec examples/teleconference.exe *)

module Core = Wfs_core

let horizon = 200_000

let build_setups ~seed =
  let master = Wfs_util.Rng.create seed in
  let rng () = Wfs_util.Rng.split master in
  let audio_drop = Core.Params.Delay_bound 50 in
  (* 160 ms budget, say *)
  let flows =
    [|
      (* Two audio flows: low rate, strict deadline, weight 2. *)
      Core.Params.flow ~id:0 ~weight:2. ~drop:audio_drop ();
      Core.Params.flow ~id:1 ~weight:2. ~drop:audio_drop ();
      (* Video: bursty, loss-tolerant, weight 4. *)
      Core.Params.flow ~id:2 ~weight:4. ~drop:(Core.Params.Retx_limit 1) ();
      (* Background bulk transfer: weight 1, never dropped. *)
      Core.Params.flow ~id:3 ~weight:1. ();
    |]
  in
  let ge ~pg ~pe = Wfs_channel.Gilbert_elliott.create ~rng:(rng ()) ~pg ~pe () in
  let setups =
    [|
      {
        Core.Simulator.flow = flows.(0);
        source = Wfs_traffic.Cbr.create ~interarrival:8. ();
        channel = ge ~pg:0.09 ~pe:0.01;
        (* good connection *)
      };
      {
        Core.Simulator.flow = flows.(1);
        source = Wfs_traffic.Cbr.create ~phase:4. ~interarrival:8. ();
        channel = ge ~pg:0.05 ~pe:0.05;
        (* cell-edge mobile: 50% error rate, bursty *)
      };
      {
        Core.Simulator.flow = flows.(2);
        source =
          Wfs_traffic.Onoff.create ~rng:(rng ()) ~packets_per_on_slot:1
            ~p_on_to_off:0.08 ~p_off_to_on:0.05 ();
        channel = ge ~pg:0.08 ~pe:0.02;
      };
      {
        Core.Simulator.flow = flows.(3);
        source = Wfs_traffic.Poisson.create ~rng:(rng ()) ~rate:0.15;
        channel = ge ~pg:0.07 ~pe:0.03;
      };
    |]
  in
  (flows, setups)

let run ~name make_sched =
  let flows, setups = build_setups ~seed:11 in
  let sched = make_sched flows in
  let cfg =
    Core.Simulator.config ~predictor:Wfs_channel.Predictor.One_step
      ~histograms:true ~horizon setups
  in
  let m = Core.Simulator.run cfg sched in
  Printf.printf "--- %s ---\n" name;
  let label = [| "audio (good channel)"; "audio (cell edge)"; "video"; "bulk" |] in
  Array.iteri
    (fun i _ ->
      Printf.printf "  %-22s mean %.2f  max %4.0f  loss %.4f\n" label.(i)
        (Core.Metrics.mean_delay m ~flow:i)
        (Core.Metrics.max_delay m ~flow:i)
        (Core.Metrics.loss m ~flow:i))
    label;
  Printf.printf "  cell-edge audio delay p50/p95/p99: %.0f / %.0f / %.0f slots\n"
    (Core.Metrics.delay_percentile m ~flow:1 ~p:50.)
    (Core.Metrics.delay_percentile m ~flow:1 ~p:95.)
    (Core.Metrics.delay_percentile m ~flow:1 ~p:99.)

let () =
  run ~name:"WRR (skip on predicted error, no compensation)" (fun flows ->
      Core.Wps.instance (Core.Wps.create ~params:Core.Params.wrr flows));
  run ~name:"WPS (spreading + swapping + credits/debits)" (fun flows ->
      Core.Wps.instance (Core.Wps.create ~params:(Core.Params.swapa ()) flows));
  run ~name:"IWFQ (idealized reference)" (fun flows ->
      Core.Iwfq.instance (Core.Iwfq.create flows))
