(* Quickstart: schedule two flows over an errored wireless channel.

   Builds the paper's Example 1 by hand — a bursty MMPP flow on a bursty
   Gilbert-Elliott channel sharing the cell with a CBR flow on a clean
   channel — runs the full WPS scheduler (SwapA with one-step prediction)
   and prints per-flow delay and loss.

   Run with: dune exec examples/quickstart.exe *)

module Core = Wfs_core

let () =
  let horizon = 100_000 in
  let master = Wfs_util.Rng.create 7 in
  (* Every stochastic component gets its own split stream so the run is
     reproducible and components can be swapped independently. *)
  let source_rng = Wfs_util.Rng.split master in
  let channel_rng = Wfs_util.Rng.split master in

  (* 1. Describe the flows: id, weight, and what to do with hopeless
     packets (here: drop after 2 retransmissions). *)
  let drop = Core.Params.Retx_limit 2 in
  let flows =
    [|
      Core.Params.flow ~id:0 ~weight:1. ~drop ();
      Core.Params.flow ~id:1 ~weight:1. ~drop ();
    |]
  in

  (* 2. Give each flow a traffic source and a channel. *)
  let setups =
    [|
      {
        Core.Simulator.flow = flows.(0);
        source = Wfs_traffic.Mmpp.paper_source ~rng:source_rng ~mean_rate:0.2 ();
        channel =
          Wfs_channel.Gilbert_elliott.of_burstiness ~rng:channel_rng
            ~good_prob:0.7 ~sum:0.1 ();
      };
      {
        Core.Simulator.flow = flows.(1);
        source = Wfs_traffic.Cbr.create ~interarrival:2. ();
        channel = Wfs_channel.Error_free.create ();
      };
    |]
  in

  (* 3. Pick a scheduler: full WPS (spreading + swapping + credits/debits). *)
  let scheduler = Core.Wps.instance (Core.Wps.create ~params:(Core.Params.swapa ()) flows) in

  (* 4. Run with one-step channel prediction. *)
  let cfg =
    Core.Simulator.config ~predictor:Wfs_channel.Predictor.One_step ~horizon
      setups
  in
  let metrics = Core.Simulator.run cfg scheduler in

  Array.iteri
    (fun i _ ->
      Printf.printf
        "flow %d: mean delay %.2f slots, max %.0f, loss %.4f, throughput %.3f pkt/slot\n"
        i
        (Core.Metrics.mean_delay metrics ~flow:i)
        (Core.Metrics.max_delay metrics ~flow:i)
        (Core.Metrics.loss metrics ~flow:i)
        (Core.Metrics.throughput metrics ~flow:i ~slots:horizon))
    flows;
  Printf.printf "idle slots: %d of %d\n" (Core.Metrics.idle_slots metrics) horizon
