(* Full MAC cell: scheduling through the Section-6 medium access protocol.

   Three mobile hosts with uplink flows (invisible arrivals: the base
   station learns of backlog only via piggybacked queue reports or won
   notification contentions) plus one downlink flow.  Shows the cost of the
   MAC's information constraints: control-slot overhead, contention
   collisions, and the extra latency packets spend invisible.

   Run with: dune exec examples/uplink_mac.exe *)

module Mac = Wfs_mac
module Core = Wfs_core

let () =
  let horizon = 200_000 in
  let master = Wfs_util.Rng.create 31 in
  let rng () = Wfs_util.Rng.split master in
  let up host = { Mac.Frame.host; direction = Mac.Frame.Uplink; index = 0 } in
  let down host = { Mac.Frame.host; direction = Mac.Frame.Downlink; index = 0 } in
  let ge ~pg ~pe = Wfs_channel.Gilbert_elliott.create ~rng:(rng ()) ~pg ~pe () in
  let flows =
    [|
      (* Steady uplink sender: piggybacking keeps it visible. *)
      {
        Mac.Mac_sim.addr = up 1;
        weight = 6.;
        source = Wfs_traffic.Cbr.create ~interarrival:4. ();
        channel = ge ~pg:0.09 ~pe:0.01;
        drop = Core.Params.Retx_limit 2;
      };
      (* Sporadic uplink sender: most packets need a notification slot. *)
      {
        Mac.Mac_sim.addr = up 2;
        weight = 6.;
        source =
          Wfs_traffic.Onoff.create ~rng:(rng ()) ~p_on_to_off:0.2
            ~p_off_to_on:0.01 ();
        channel = ge ~pg:0.07 ~pe:0.03;
        drop = Core.Params.Retx_limit 2;
      };
      (* Second flow on host 2: rides host 2's piggybacks. *)
      {
        Mac.Mac_sim.addr = { (up 2) with Mac.Frame.index = 1 };
        weight = 3.;
        source = Wfs_traffic.Poisson.create ~rng:(rng ()) ~rate:0.05;
        channel = ge ~pg:0.07 ~pe:0.03;
        drop = Core.Params.Retx_limit 2;
      };
      (* Downlink: queue known exactly at the base station. *)
      {
        Mac.Mac_sim.addr = down 3;
        weight = 6.;
        source = Wfs_traffic.Poisson.create ~rng:(rng ()) ~rate:0.2;
        channel = ge ~pg:0.095 ~pe:0.005;
        drop = Core.Params.No_drop;
      };
    |]
  in
  let cfg = Mac.Mac_sim.config ~rng:(rng ()) ~horizon flows in
  let r = Mac.Mac_sim.run cfg in
  let m = r.Mac.Mac_sim.metrics in
  let label =
    [| "uplink h1 (steady)"; "uplink h2 (sporadic)"; "uplink h2 #2"; "downlink h3" |]
  in
  Array.iteri
    (fun i _ ->
      Printf.printf "%-22s arrivals %6d  delivered %6d  mean delay %6.2f  loss %.4f\n"
        label.(i)
        (Core.Metrics.arrivals m ~flow:i)
        (Core.Metrics.delivered m ~flow:i)
        (Core.Metrics.mean_delay m ~flow:i)
        (Core.Metrics.loss m ~flow:i))
    label;
  Printf.printf "\nMAC accounting over %d slots:\n" horizon;
  Printf.printf "  data slots        %d\n" r.Mac.Mac_sim.data_slots;
  Printf.printf "  control slots     %d (%.1f%%)\n" r.Mac.Mac_sim.control_slots
    (100. *. float_of_int r.Mac.Mac_sim.control_slots /. float_of_int horizon);
  Printf.printf "  idle slots        %d\n" r.Mac.Mac_sim.idle_slots;
  Printf.printf "  notification wins %d (collisions %d)\n"
    r.Mac.Mac_sim.notifications_won r.Mac.Mac_sim.notification_collisions;
  Printf.printf "  piggyback reveals %d\n" r.Mac.Mac_sim.piggyback_reveals;
  Printf.printf "  mean time a packet stays invisible: %.2f slots\n"
    r.Mac.Mac_sim.mean_reveal_delay
