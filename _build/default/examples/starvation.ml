(* Worst-case behaviour: slotted contention vs tag precedence (Section 7).

   The paper observes that WPS loses IWFQ's precedence history: a flow that
   only contends in designated slots can miss the few slots in which its
   channel happens to be good, while IWFQ — whose lagging flows keep the
   minimum service tag — seizes *every* good slot.  This example builds a
   hostile channel (good 1 slot in `period`, bad otherwise) for a victim
   flow sharing the cell with saturated, error-free peers, and compares the
   victim's throughput under WRR, full WPS, and IWFQ.

   Run with: dune exec examples/starvation.exe *)

module Core = Wfs_core

let horizon = 50_000
let n_flows = 5

let run ~period make_sched =
  let flows =
    Array.init n_flows (fun id -> Core.Params.flow ~id ~weight:1. ())
  in
  let sched = make_sched flows in
  let victim_channel =
    Wfs_channel.Periodic_ch.create
      ~pattern:
        (Array.init period (fun i ->
             if i = period / 2 then Wfs_channel.Channel.Good
             else Wfs_channel.Channel.Bad))
  in
  let setups =
    Array.init n_flows (fun i ->
        {
          Core.Simulator.flow = flows.(i);
          source =
            (if i = 0 then Wfs_traffic.Cbr.create ~interarrival:(float_of_int period) ()
             else Wfs_traffic.Cbr.create ~interarrival:1. ());
          channel =
            (if i = 0 then victim_channel else Wfs_channel.Error_free.create ());
        })
  in
  let cfg =
    Core.Simulator.config ~predictor:Wfs_channel.Predictor.Perfect ~horizon setups
  in
  let m = Core.Simulator.run cfg sched in
  ( Core.Metrics.delivered m ~flow:0,
    Core.Metrics.arrivals m ~flow:0,
    Core.Metrics.mean_delay m ~flow:0 )

let () =
  let table =
    Wfs_util.Tablefmt.create
      ~title:
        "Victim flow (channel good 1 slot in N) vs 4 saturated clean peers"
      ~columns:[ "good period"; "scheduler"; "delivered/offered"; "mean delay" ]
  in
  List.iter
    (fun period ->
      List.iter
        (fun (name, make) ->
          let delivered, offered, delay = run ~period make in
          Wfs_util.Tablefmt.add_row table
            [
              string_of_int period;
              name;
              Printf.sprintf "%d/%d" delivered offered;
              Wfs_util.Tablefmt.cell_of_float delay;
            ])
        [
          ( "WRR",
            fun flows ->
              Core.Wps.instance (Core.Wps.create ~params:Core.Params.wrr flows) );
          ( "WPS (SwapA)",
            fun flows ->
              Core.Wps.instance (Core.Wps.create ~params:(Core.Params.swapa ()) flows) );
          ( "IWFQ",
            fun flows -> Core.Iwfq.instance (Core.Iwfq.create flows) );
        ])
    [ 5; 10; 20 ];
  Wfs_util.Tablefmt.print table;
  print_endline
    "IWFQ's lagging-flow tag precedence uses every good slot the victim\n\
     gets; slotted WRR only serves the victim when its frame position and\n\
     its rare good slots align.  WPS's credits recover part of the gap —\n\
     bounded by the credit cap — which is the average-case/worst-case\n\
     trade-off Section 7 discusses."
