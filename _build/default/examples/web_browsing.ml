(* WWW browsing cell: many bursty, loss-tolerant flows.

   Eight mobiles browse the web: each flow is a bursty MMPP (think request/
   response trains) over its own Gilbert-Elliott channel, a mix of clean and
   error-prone locations.  The experiment sweeps the credit/debit cap to
   show the separation-vs-compensation trade-off of Section 3 at the level
   of a whole cell: bigger caps hide error bursts from the unlucky mobiles
   at a small cost to the lucky ones.

   Run with: dune exec examples/web_browsing.exe *)

module Core = Wfs_core

let n_flows = 8
let horizon = 300_000

let build_setups ~seed =
  let master = Wfs_util.Rng.create seed in
  let flows =
    Array.init n_flows (fun id ->
        Core.Params.flow ~id ~weight:1. ~drop:(Core.Params.Delay_bound 400) ())
  in
  let setups =
    Array.map
      (fun (flow : Core.Params.flow) ->
        let source_rng = Wfs_util.Rng.split master in
        let channel_rng = Wfs_util.Rng.split master in
        (* Half the mobiles sit in bad spots: PG 0.7 instead of 0.95. *)
        let good_prob = if flow.id mod 2 = 0 then 0.95 else 0.7 in
        {
          Core.Simulator.flow;
          source = Wfs_traffic.Mmpp.paper_source ~rng:source_rng ~mean_rate:0.09 ();
          channel =
            Wfs_channel.Gilbert_elliott.of_burstiness ~rng:channel_rng
              ~good_prob ~sum:0.1 ();
        })
      flows
  in
  (flows, setups)

let mean_over pred m =
  let sum = ref 0. and n = ref 0 in
  for i = 0 to n_flows - 1 do
    if pred i then begin
      sum := !sum +. Core.Metrics.mean_delay m ~flow:i;
      incr n
    end
  done;
  !sum /. float_of_int !n

let () =
  let table =
    Wfs_util.Tablefmt.create
      ~title:"Web browsing cell: credit/debit cap sweep (WPS, one-step prediction)"
      ~columns:
        [ "cap"; "good-spot mean delay"; "bad-spot mean delay"; "bad-spot loss" ]
  in
  List.iter
    (fun cap ->
      let flows, setups = build_setups ~seed:23 in
      let sched =
        Core.Wps.instance
          (Core.Wps.create
             ~params:(Core.Params.swapa ~credit_limit:cap ~debit_limit:cap ())
             flows)
      in
      let cfg =
        Core.Simulator.config ~predictor:Wfs_channel.Predictor.One_step ~horizon
          setups
      in
      let m = Core.Simulator.run cfg sched in
      let bad_loss = ref 0. in
      for i = 0 to n_flows - 1 do
        if i mod 2 = 1 then bad_loss := !bad_loss +. Core.Metrics.loss m ~flow:i
      done;
      Wfs_util.Tablefmt.add_row table
        [
          string_of_int cap;
          Wfs_util.Tablefmt.cell_of_float (mean_over (fun i -> i mod 2 = 0) m);
          Wfs_util.Tablefmt.cell_of_float (mean_over (fun i -> i mod 2 = 1) m);
          Wfs_util.Tablefmt.cell_of_float ~decimals:4 (!bad_loss /. 4.);
        ])
    [ 0; 1; 2; 4; 8; 16 ];
  Wfs_util.Tablefmt.print table;
  print_endline
    "Larger caps let unlucky mobiles reclaim more of their error-burst losses\n\
     (lower bad-spot delay/loss) while good-spot flows pay a bounded price —\n\
     the Section 3 compensation-vs-separation dial."
