examples/uplink_mac.mli:
