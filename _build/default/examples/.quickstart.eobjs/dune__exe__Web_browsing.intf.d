examples/web_browsing.mli:
