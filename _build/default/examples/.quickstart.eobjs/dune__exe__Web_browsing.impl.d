examples/web_browsing.ml: Array List Wfs_channel Wfs_core Wfs_traffic Wfs_util
