examples/uplink_mac.ml: Array Printf Wfs_channel Wfs_core Wfs_mac Wfs_traffic Wfs_util
