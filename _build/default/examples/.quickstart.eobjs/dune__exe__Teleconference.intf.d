examples/teleconference.mli:
