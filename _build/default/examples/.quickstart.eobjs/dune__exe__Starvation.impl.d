examples/starvation.ml: Array List Printf Wfs_channel Wfs_core Wfs_traffic Wfs_util
