examples/quickstart.mli:
