examples/quickstart.ml: Array Printf Wfs_channel Wfs_core Wfs_traffic Wfs_util
