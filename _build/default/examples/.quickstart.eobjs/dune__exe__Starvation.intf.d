examples/starvation.mli:
