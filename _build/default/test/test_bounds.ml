(* Tests for the Section-5 bound calculators and the empirical verifier. *)

module B = Wfs_bounds
module Core = Wfs_core
module Rng = Wfs_util.Rng

let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

let sys2 = B.Theorems.make ~weights:[| 1.; 1. |] ~lag_total:4. ~lead:[| 2.; 2. |]

let test_wfq_hol_delay () =
  (* Lp/C + Lp*sum_r/(r*C) = 1 + 2/1 = 3 slots. *)
  check_float "two equal flows" 3. (B.Theorems.wfq_max_hol_delay sys2 ~flow:0);
  let sys = B.Theorems.make ~weights:[| 1.; 3. |] ~lag_total:4. ~lead:[| 1.; 1. |] in
  check_float "weighted" 5. (B.Theorems.wfq_max_hol_delay sys ~flow:0);
  Alcotest.(check (float 1e-6)) "heavy flow"
    (1. +. (4. /. 3.))
    (B.Theorems.wfq_max_hol_delay sys ~flow:1)

let test_extra_delay_is_lag_total () =
  check_float "B/C" 4. (B.Theorems.extra_delay_error_free sys2)

let test_new_queue_delay () =
  (* Δd + d_WFQ + ΔT = 4 + 3 + l*Σother/r = 4 + 3 + 2 = 9. *)
  check_float "theorem 3" 9. (B.Theorems.new_queue_delay sys2 ~flow:0)

let test_short_term_clearance () =
  let t =
    B.Theorems.short_term_backlog_clearance sys2 ~flow:0 ~lags:[| 9.; 3. |]
      ~lead_now:2.
  in
  (* other lags (3) + lead*Σother/r (2) = 5; own lag excluded. *)
  check_float "theorem 4 horizon" 5. t

let test_max_lagging_slots_of_others () =
  check_float "fact 1 share" 2. (B.Theorems.max_lagging_slots_of_others sys2 ~flow:0)

let test_error_prone_extra_delay () =
  (* Deterministic channel: good every 3rd slot -> k-th good slot at 3k. *)
  let good_slot_time k = float_of_int (3 * k) in
  (* M = 2, so T_{M+1} = T_3 = 9. *)
  check_float "theorem 5" 9.
    (B.Theorems.error_prone_extra_delay sys2 ~flow:0 ~good_slot_time)

let test_throughput_short_term () =
  let s =
    B.Theorems.throughput_short_term sys2 ~flow:0 ~good_slots:20
      ~lags:[| 0.; 4. |] ~lead_now:2.
  in
  (* N(t) = 4 + 2 = 6; (20-6)*1/2 - 1 = 6. *)
  check_float "theorem 7" 6. s

let test_make_validation () =
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Theorems.make: weights/lead length mismatch") (fun () ->
      ignore (B.Theorems.make ~weights:[| 1. |] ~lag_total:1. ~lead:[||]))

(* --- Empirical verification on simulated IWFQ --- *)

let example1_setups ~seed () = Core.Presets.example1 ~sum:0.1 ~seed ()

let test_verify_fact1_holds () =
  let r =
    B.Verify.check_fact1 ~horizon:20_000
      ~make_setups:(example1_setups ~seed:5)
      ~predictor:Wfs_channel.Predictor.Perfect ()
  in
  Alcotest.(check int) "no violations" 0 r.B.Verify.violations;
  check_bool "sampled" true (r.B.Verify.samples = 20_000)

let test_verify_long_term_throughput () =
  (* Theorem 6 with a generous shift: the errored system, shifted, keeps up
     with the error-free one.  The lag bound is raised far above the run's
     worst burst so no packets are discarded — the theorem bounds service,
     not loss. *)
  let params =
    {
      (Core.Params.iwfq_defaults ~n_flows:2) with
      Core.Params.lag_total = 1000.;
    }
  in
  let r =
    B.Verify.check_long_term_throughput ~params ~horizon:20_000 ~shift:600
      ~make_setups:(example1_setups ~seed:6)
      ~predictor:Wfs_channel.Predictor.Perfect ~flow:0 ()
  in
  Alcotest.(check int) "no violations" 0 r.B.Verify.violations

let test_verify_error_free_flow_delay () =
  (* Theorem 1 for the error-free flow (flow 1 in Example 1): its
     deliveries shift by at most B/C + 1. *)
  let params =
    { (Core.Params.iwfq_defaults ~n_flows:2) with Core.Params.lag_total = 8. }
  in
  let r =
    B.Verify.check_error_free_delay ~params ~horizon:20_000
      ~make_setups:(example1_setups ~seed:7)
      ~predictor:Wfs_channel.Predictor.Perfect ~flow:1 ()
  in
  Alcotest.(check int) "no violations" 0 r.B.Verify.violations;
  check_bool "many packets compared" true (r.B.Verify.samples > 5_000)

let test_verify_new_queue_delay () =
  (* Theorem 3 for the error-free flow of Example 1. *)
  let r =
    B.Verify.check_new_queue_delay ~horizon:20_000
      ~make_setups:(example1_setups ~seed:8)
      ~predictor:Wfs_channel.Predictor.Perfect ~flow:1 ()
  in
  Alcotest.(check int) "no violations" 0 r.B.Verify.violations;
  check_bool "new-queue packets found" true (r.B.Verify.samples > 1_000)

let test_verify_short_term_throughput () =
  (* Theorem 7 needs the flow continuously backlogged, so use a heavily
     loaded variant: flow 0 near-saturates its share over a bad bursty
     channel. *)
  let make_setups () =
    let master = Wfs_util.Rng.create 9 in
    let flows =
      [|
        Core.Params.flow ~id:0 ~weight:1. ();
        Core.Params.flow ~id:1 ~weight:1. ();
      |]
    in
    [|
      {
        Core.Simulator.flow = flows.(0);
        source = Wfs_traffic.Cbr.create ~interarrival:1.6 ();
        channel =
          Wfs_channel.Gilbert_elliott.of_burstiness
            ~rng:(Wfs_util.Rng.split master) ~good_prob:0.7 ~sum:0.1 ();
      };
      {
        Core.Simulator.flow = flows.(1);
        source = Wfs_traffic.Cbr.create ~interarrival:2. ();
        channel = Wfs_channel.Error_free.create ();
      };
    |]
  in
  let r =
    B.Verify.check_short_term_throughput ~horizon:20_000 ~window:100
      ~make_setups ~predictor:Wfs_channel.Predictor.Perfect ~flow:0 ()
  in
  Alcotest.(check int) "no violations" 0 r.B.Verify.violations;
  check_bool "windows sampled" true (r.B.Verify.samples > 10)

let test_report_pp () =
  let s =
    Format.asprintf "%a" B.Verify.pp_report
      { B.Verify.samples = 10; violations = 1; worst_slack = -0.5 }
  in
  check_bool "renders" true (String.length s > 0)

let suite =
  [
    ("wfq hol delay", `Quick, test_wfq_hol_delay);
    ("extra delay = B/C", `Quick, test_extra_delay_is_lag_total);
    ("new queue delay", `Quick, test_new_queue_delay);
    ("short-term clearance", `Quick, test_short_term_clearance);
    ("max lagging slots of others", `Quick, test_max_lagging_slots_of_others);
    ("error-prone extra delay", `Quick, test_error_prone_extra_delay);
    ("short-term throughput", `Quick, test_throughput_short_term);
    ("theorem input validation", `Quick, test_make_validation);
    ("fact 1 empirically", `Slow, test_verify_fact1_holds);
    ("long-term throughput empirically", `Slow, test_verify_long_term_throughput);
    ("error-free delay empirically", `Slow, test_verify_error_free_flow_delay);
    ("new-queue delay empirically", `Slow, test_verify_new_queue_delay);
    ("short-term throughput empirically", `Slow, test_verify_short_term_throughput);
    ("report pp", `Quick, test_report_pp);
  ]
