test/test_wireline.ml: Alcotest Array Float Hashtbl List Option Printf QCheck QCheck_alcotest Wfs_util Wfs_wireline
