test/test_traffic.ml: Alcotest List Wfs_traffic Wfs_util
