test/test_sim.ml: Alcotest Format List Option Wfs_sim
