test/test_scenario.ml: Alcotest Array Filename List Sys Wfs_channel Wfs_core
