test/test_mac.ml: Alcotest Array Fun List Wfs_channel Wfs_core Wfs_mac Wfs_traffic Wfs_util
