test/test_integration.ml: Alcotest Array Float Hashtbl List Option Printf Wfs_channel Wfs_core Wfs_mac Wfs_traffic Wfs_util Wfs_wireline
