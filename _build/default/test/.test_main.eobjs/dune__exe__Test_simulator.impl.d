test/test_simulator.ml: Alcotest Array List Wfs_channel Wfs_core Wfs_sim Wfs_traffic Wfs_util
