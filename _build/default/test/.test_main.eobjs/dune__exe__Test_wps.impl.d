test/test_wps.ml: Alcotest Array List Option Wfs_core Wfs_sim Wfs_traffic
