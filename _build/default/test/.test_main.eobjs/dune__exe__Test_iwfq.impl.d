test/test_iwfq.ml: Alcotest Array Gen List Option QCheck QCheck_alcotest Wfs_core Wfs_traffic Wfs_util Wfs_wireline
