test/test_channel.ml: Alcotest Array Fun List Wfs_channel Wfs_util
