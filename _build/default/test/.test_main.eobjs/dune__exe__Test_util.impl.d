test/test_util.ml: Alcotest Array Float Fun Gen List Option Printf QCheck QCheck_alcotest String Wfs_util
