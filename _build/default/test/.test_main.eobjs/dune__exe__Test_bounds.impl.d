test/test_bounds.ml: Alcotest Array Format String Wfs_bounds Wfs_channel Wfs_core Wfs_traffic Wfs_util
