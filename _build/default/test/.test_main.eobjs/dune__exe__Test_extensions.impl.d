test/test_extensions.ml: Alcotest Array Fun List Option QCheck QCheck_alcotest String Wfs_channel Wfs_core Wfs_mac Wfs_sim Wfs_traffic Wfs_util Wfs_wireline
