(* Tests for arrival processes: exact rates, burst structure, trace replay. *)

module Rng = Wfs_util.Rng
module Arrival = Wfs_traffic.Arrival
module Packet = Wfs_traffic.Packet

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let total_arrivals src ~slots =
  let sum = ref 0 in
  for slot = 0 to slots - 1 do
    sum := !sum + Arrival.arrivals src ~slot
  done;
  !sum

(* --- Packet --- *)

let test_packet_delay_age () =
  let p = Packet.make ~flow:0 ~seq:3 ~arrival:10 () in
  check_int "delay" 5 (Packet.delay p ~departed:15);
  check_int "age" 2 (Packet.age p ~now:12);
  check_int "fresh attempts" 0 p.Packet.attempts

(* --- CBR --- *)

let test_cbr_exact_schedule () =
  let src = Wfs_traffic.Cbr.create ~interarrival:2. () in
  let counts = List.init 6 (fun slot -> Arrival.arrivals src ~slot) in
  Alcotest.(check (list int)) "every other slot" [ 1; 0; 1; 0; 1; 0 ] counts

let test_cbr_fractional () =
  let src = Wfs_traffic.Cbr.create ~interarrival:1.5 () in
  let total = total_arrivals src ~slots:300 in
  check_int "rate 2/3" 200 total

let test_cbr_phase () =
  let src = Wfs_traffic.Cbr.create ~phase:1.0 ~interarrival:2. () in
  let counts = List.init 4 (fun slot -> Arrival.arrivals src ~slot) in
  Alcotest.(check (list int)) "shifted" [ 0; 1; 0; 1 ] counts

let test_cbr_invalid () =
  Alcotest.check_raises "interarrival 0"
    (Invalid_argument "Cbr.create: interarrival must be > 0") (fun () ->
      ignore (Wfs_traffic.Cbr.create ~interarrival:0. ()))

(* --- Poisson --- *)

let test_poisson_rate () =
  let src = Wfs_traffic.Poisson.create ~rng:(Rng.create 1) ~rate:0.25 in
  let total = total_arrivals src ~slots:100_000 in
  check_bool "rate near 0.25" true
    (abs_float ((float_of_int total /. 100_000.) -. 0.25) < 0.01)

let test_poisson_zero_rate () =
  let src = Wfs_traffic.Poisson.create ~rng:(Rng.create 1) ~rate:0. in
  check_int "silent" 0 (total_arrivals src ~slots:1000)

(* --- MMPP --- *)

let test_mmpp_mean_rate () =
  let src = Wfs_traffic.Mmpp.create ~rng:(Rng.create 2) ~on_rate:2. () in
  Alcotest.(check (float 1e-9)) "declared mean" 0.2 (Arrival.mean_rate src);
  let total = total_arrivals src ~slots:200_000 in
  check_bool "measured near 0.2" true
    (abs_float ((float_of_int total /. 200_000.) -. 0.2) < 0.01)

let test_mmpp_paper_source_rate () =
  let src = Wfs_traffic.Mmpp.paper_source ~rng:(Rng.create 3) ~mean_rate:0.08 () in
  let total = total_arrivals src ~slots:200_000 in
  check_bool "measured near 0.08" true
    (abs_float ((float_of_int total /. 200_000.) -. 0.08) < 0.008)

let test_mmpp_burstier_than_poisson () =
  (* Per-slot counts of an MMPP with slow modulation have higher variance
     than a Poisson source of the same mean. *)
  let slots = 100_000 in
  let var_of src =
    let s = Wfs_util.Stats.Summary.create () in
    for slot = 0 to slots - 1 do
      Wfs_util.Stats.Summary.add s (float_of_int (Arrival.arrivals src ~slot))
    done;
    Wfs_util.Stats.Summary.variance s
  in
  let mmpp =
    Wfs_traffic.Mmpp.create ~rng:(Rng.create 4) ~on_to_off:0.02 ~off_to_on:0.005
      ~on_rate:1.0 ()
  in
  let poisson = Wfs_traffic.Poisson.create ~rng:(Rng.create 5) ~rate:0.2 in
  check_bool "mmpp variance dominates" true (var_of mmpp > 1.5 *. var_of poisson)

let test_mmpp_invalid () =
  Alcotest.check_raises "bad rates"
    (Invalid_argument "Mmpp.create: modulating rates must be > 0") (fun () ->
      ignore (Wfs_traffic.Mmpp.create ~rng:(Rng.create 1) ~on_to_off:0. ~on_rate:1. ()))

(* --- On-off --- *)

let test_onoff_mean_rate () =
  let src =
    Wfs_traffic.Onoff.create ~rng:(Rng.create 6) ~p_on_to_off:0.1 ~p_off_to_on:0.1 ()
  in
  let total = total_arrivals src ~slots:100_000 in
  check_bool "rate near 0.5" true
    (abs_float ((float_of_int total /. 100_000.) -. 0.5) < 0.02)

let test_onoff_bursts_geometric () =
  let src =
    Wfs_traffic.Onoff.create ~rng:(Rng.create 7) ~p_on_to_off:0.25 ~p_off_to_on:0.25 ()
  in
  (* Measure mean ON-burst length; should be near 1/0.25 = 4. *)
  let bursts = ref [] in
  let current = ref 0 in
  for slot = 0 to 100_000 - 1 do
    if Arrival.arrivals src ~slot > 0 then incr current
    else if !current > 0 then begin
      bursts := !current :: !bursts;
      current := 0
    end
  done;
  let mean =
    float_of_int (List.fold_left ( + ) 0 !bursts)
    /. float_of_int (List.length !bursts)
  in
  check_bool "mean burst near 4" true (abs_float (mean -. 4.) < 0.3)

(* --- Trace --- *)

let test_trace_source_replay () =
  let src = Wfs_traffic.Trace_source.create [ (0, 2); (3, 1); (0, 1) ] in
  let counts = List.init 5 (fun slot -> Arrival.arrivals src ~slot) in
  Alcotest.(check (list int)) "replay with accumulation" [ 3; 0; 0; 1; 0 ] counts

let test_trace_source_of_slots () =
  let src = Wfs_traffic.Trace_source.of_slots [ 1; 4 ] in
  let counts = List.init 5 (fun slot -> Arrival.arrivals src ~slot) in
  Alcotest.(check (list int)) "one each" [ 0; 1; 0; 0; 1 ] counts

let test_trace_source_invalid () =
  Alcotest.check_raises "negative slot"
    (Invalid_argument "Trace_source.create: negative slot or count") (fun () ->
      ignore (Wfs_traffic.Trace_source.create [ (-1, 1) ]))

let suite =
  [
    ("packet delay/age", `Quick, test_packet_delay_age);
    ("cbr exact schedule", `Quick, test_cbr_exact_schedule);
    ("cbr fractional rate", `Quick, test_cbr_fractional);
    ("cbr phase", `Quick, test_cbr_phase);
    ("cbr invalid", `Quick, test_cbr_invalid);
    ("poisson rate", `Quick, test_poisson_rate);
    ("poisson zero rate", `Quick, test_poisson_zero_rate);
    ("mmpp mean rate", `Quick, test_mmpp_mean_rate);
    ("mmpp paper source", `Quick, test_mmpp_paper_source_rate);
    ("mmpp burstier than poisson", `Quick, test_mmpp_burstier_than_poisson);
    ("mmpp invalid", `Quick, test_mmpp_invalid);
    ("onoff mean rate", `Quick, test_onoff_mean_rate);
    ("onoff geometric bursts", `Quick, test_onoff_bursts_geometric);
    ("trace source replay", `Quick, test_trace_source_replay);
    ("trace source of_slots", `Quick, test_trace_source_of_slots);
    ("trace source invalid", `Quick, test_trace_source_invalid);
  ]
