(* Tests for the WPS engine: frame construction, the four mechanisms
   (spreading, intra/inter-frame swapping, credits/debits, prediction
   handling), variant semantics, and the Section 7 starvation pathology. *)

module Core = Wfs_core
module Packet = Wfs_traffic.Packet
module Tracelog = Wfs_sim.Tracelog

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let mk_flows ?(drop = Core.Params.No_drop) weights =
  Array.mapi (fun id w -> Core.Params.flow ~id ~weight:w ~drop ()) weights

let pkt ~flow ~seq ~arrival = Packet.make ~flow ~seq ~arrival ()

let fill sched ~flow ~count =
  for seq = 0 to count - 1 do
    sched.Core.Wireless_sched.enqueue ~slot:0 (pkt ~flow ~seq ~arrival:0)
  done

let all_good _ = true

(* Run [slots] selections with every channel good, recording who sends. *)
let run_good sched ~slots =
  List.init slots (fun slot ->
      match sched.Core.Wireless_sched.select ~slot ~predicted_good:all_good with
      | Some f ->
          sched.complete ~flow:f;
          sched.on_slot_end ~slot;
          f
      | None ->
          sched.on_slot_end ~slot;
          -1)

let test_wrr_weighted_frames () =
  let wps = Core.Wps.create ~params:Core.Params.wrr (mk_flows [| 2.; 1. |]) in
  let sched = Core.Wps.instance wps in
  fill sched ~flow:0 ~count:9;
  fill sched ~flow:1 ~count:9;
  let order = run_good sched ~slots:6 in
  check_int "flow0 gets 2/3" 4 (List.length (List.filter (fun f -> f = 0) order));
  check_int "flow1 gets 1/3" 2 (List.length (List.filter (fun f -> f = 1) order))

let test_frames_spread_not_clustered () =
  let wps = Core.Wps.create ~params:Core.Params.wrr (mk_flows [| 2.; 2. |]) in
  let sched = Core.Wps.instance wps in
  fill sched ~flow:0 ~count:8;
  fill sched ~flow:1 ~count:8;
  let order = run_good sched ~slots:4 in
  Alcotest.(check (list int)) "wf2q spread" [ 0; 1; 0; 1 ] order

let test_work_conserving_when_peer_empty () =
  let wps = Core.Wps.create ~params:Core.Params.wrr (mk_flows [| 1.; 1. |]) in
  let sched = Core.Wps.instance wps in
  fill sched ~flow:0 ~count:4;
  let order = run_good sched ~slots:4 in
  Alcotest.(check (list int)) "flow0 uses all slots" [ 0; 0; 0; 0 ] order

let test_midframe_backlog_waits_for_next_frame () =
  (* A flow becoming backlogged mid-frame stays out until the next frame
     (Section 7 requirement (c)). *)
  let wps = Core.Wps.create ~params:Core.Params.wrr (mk_flows [| 1.; 2. |]) in
  let sched = Core.Wps.instance wps in
  fill sched ~flow:1 ~count:10;
  (* Frame is built for flow1 alone at slot 0. *)
  let first = Option.get (sched.select ~slot:0 ~predicted_good:all_good) in
  check_int "frame of flow1" 1 first;
  sched.complete ~flow:1;
  sched.on_slot_end ~slot:0;
  (* flow0 arrives mid-frame: invisible until the frame ends. *)
  sched.enqueue ~slot:1 (pkt ~flow:0 ~seq:0 ~arrival:1);
  let second = Option.get (sched.select ~slot:1 ~predicted_good:all_good) in
  check_int "still flow1's frame" 1 second;
  sched.complete ~flow:1;
  sched.on_slot_end ~slot:1;
  (* Next frame includes flow0: spread of weights (1,2) is [1;0;1]. *)
  let third = Option.get (sched.select ~slot:2 ~predicted_good:all_good) in
  check_int "new frame starts with flow1" 1 third;
  sched.complete ~flow:1;
  sched.on_slot_end ~slot:2;
  let fourth = Option.get (sched.select ~slot:3 ~predicted_good:all_good) in
  check_int "flow0 admitted in the new frame" 0 fourth

let test_blind_transmits_into_error () =
  let wps = Core.Wps.create ~params:Core.Params.blind_wrr (mk_flows [| 1.; 1. |]) in
  let sched = Core.Wps.instance wps in
  fill sched ~flow:0 ~count:2;
  fill sched ~flow:1 ~count:2;
  (* Even with flow0 predicted bad, Blind WRR schedules it. *)
  let sel = Option.get (sched.select ~slot:0 ~predicted_good:(fun f -> f = 1)) in
  check_int "blind ignores prediction" 0 sel

let test_wrr_skips_error_slot () =
  (* Plain WRR wastes the skipped slot (Section 8: "skipping the slot");
     the next in-frame flow transmits in the *next* physical slot. *)
  let wps = Core.Wps.create ~params:Core.Params.wrr (mk_flows [| 1.; 1. |]) in
  let sched = Core.Wps.instance wps in
  fill sched ~flow:0 ~count:2;
  fill sched ~flow:1 ~count:2;
  check_bool "skipped slot idles" true
    (Option.is_none (sched.select ~slot:0 ~predicted_good:(fun f -> f = 1)));
  sched.on_slot_end ~slot:0;
  let sel = Option.get (sched.select ~slot:1 ~predicted_good:(fun f -> f = 1)) in
  check_int "next flow transmits next slot" 1 sel

let test_idle_when_universal_error () =
  List.iter
    (fun params ->
      let wps = Core.Wps.create ~params (mk_flows [| 1.; 1. |]) in
      let sched = Core.Wps.instance wps in
      fill sched ~flow:0 ~count:2;
      fill sched ~flow:1 ~count:2;
      check_bool "idles" true
        (Option.is_none (sched.select ~slot:0 ~predicted_good:(fun _ -> false))))
    [ Core.Params.wrr; Core.Params.noswap (); Core.Params.swapa () ]

let test_noswap_earns_credit () =
  let wps = Core.Wps.create ~params:(Core.Params.noswap ()) (mk_flows [| 1.; 1. |]) in
  let sched = Core.Wps.instance wps in
  fill sched ~flow:0 ~count:4;
  fill sched ~flow:1 ~count:4;
  (* Frame [0;1]: flow0 bad -> skipped with credit; flow1 transmits. *)
  let sel = Option.get (sched.select ~slot:0 ~predicted_good:(fun f -> f = 1)) in
  check_int "flow1 substitutes" 1 sel;
  sched.complete ~flow:1;
  sched.on_slot_end ~slot:0;
  (* Next frame settles credits: flow0 banked 1. *)
  ignore (sched.select ~slot:1 ~predicted_good:all_good);
  check_int "credit earned" 1 (Core.Wps.credit wps ~flow:0);
  check_int "boosted effective weight" 2 (Core.Wps.effective_weight wps ~flow:0)

let test_wrr_never_credits () =
  let wps = Core.Wps.create ~params:Core.Params.wrr (mk_flows [| 1.; 1. |]) in
  let sched = Core.Wps.instance wps in
  fill sched ~flow:0 ~count:4;
  fill sched ~flow:1 ~count:4;
  ignore (sched.select ~slot:0 ~predicted_good:(fun f -> f = 1));
  sched.complete ~flow:1;
  sched.on_slot_end ~slot:0;
  ignore (sched.select ~slot:1 ~predicted_good:all_good);
  check_int "no credits in WRR" 0 (Core.Wps.credit wps ~flow:0)

let test_no_credit_for_empty_queue () =
  (* A flow that drains mid-frame must not earn credit for unused slots. *)
  let wps = Core.Wps.create ~params:(Core.Params.swapa ()) (mk_flows [| 3.; 1. |]) in
  let sched = Core.Wps.instance wps in
  fill sched ~flow:0 ~count:1;
  (* Only 1 packet though weight 3 *)
  fill sched ~flow:1 ~count:5;
  (* frame: [0;1;0;0] (wf2q spread of 3,1) *)
  let order = run_good sched ~slots:4 in
  check_int "flow0 transmits once" 1 (List.length (List.filter (fun f -> f = 0) order));
  (* settle at next frame *)
  ignore (sched.select ~slot:5 ~predicted_good:all_good);
  check_int "no idleness credit" 0 (Core.Wps.credit wps ~flow:0)

let test_swapw_intra_frame_swap () =
  let trace = Tracelog.create () in
  let wps =
    Core.Wps.create ~params:(Core.Params.swapw ()) ~trace (mk_flows [| 1.; 1. |])
  in
  let sched = Core.Wps.instance wps in
  fill sched ~flow:0 ~count:4;
  fill sched ~flow:1 ~count:4;
  (* flow0's slot is bad; flow1 later in frame is good -> swap. *)
  let sel = Option.get (sched.select ~slot:0 ~predicted_good:(fun f -> f = 1)) in
  check_int "swapped-in flow transmits now" 1 sel;
  let swaps =
    Tracelog.count trace (fun e ->
        match e.Tracelog.event with Tracelog.Swap _ -> true | _ -> false)
  in
  check_int "swap recorded" 1 swaps;
  sched.complete ~flow:1;
  sched.on_slot_end ~slot:0;
  (* flow0 now holds the later slot; if its channel recovered it
     transmits there — same frame. *)
  let sel = Option.get (sched.select ~slot:1 ~predicted_good:all_good) in
  check_int "original flow keeps a chance in-frame" 0 sel

let test_swapa_debits_the_substitute () =
  let wps =
    Core.Wps.create ~params:(Core.Params.swapa ()) (mk_flows [| 1.; 1.; 1. |])
  in
  let sched = Core.Wps.instance wps in
  fill sched ~flow:0 ~count:6;
  fill sched ~flow:1 ~count:6;
  fill sched ~flow:2 ~count:6;
  (* flow0 bad the whole frame; flows 1,2 good.  Frame [0;1;2]: flow0's
     slot: intra-swap moves a later flow up; by frame end flow0 missed its
     slot and someone transmitted 2 slots. *)
  let order =
    List.init 3 (fun slot ->
        match sched.select ~slot ~predicted_good:(fun f -> f <> 0) with
        | Some f ->
            sched.complete ~flow:f;
            sched.on_slot_end ~slot;
            f
        | None ->
            sched.on_slot_end ~slot;
            -1)
  in
  check_bool "no idle slots" true (not (List.mem (-1) order));
  (* settle *)
  ignore (sched.select ~slot:3 ~predicted_good:all_good);
  check_int "flow0 credited" 1 (Core.Wps.credit wps ~flow:0);
  let debit_total =
    Core.Wps.credit wps ~flow:1 + Core.Wps.credit wps ~flow:2
  in
  check_int "one debit among substitutes" (-1) debit_total

let test_debit_limit_respected () =
  let wps =
    Core.Wps.create
      ~params:(Core.Params.swapa ~credit_limit:4 ~debit_limit:0 ())
      (mk_flows [| 1.; 1. |])
  in
  let sched = Core.Wps.instance wps in
  fill sched ~flow:0 ~count:8;
  fill sched ~flow:1 ~count:8;
  (* flow0 always bad: flow1 repeatedly substitutes, but with debit 0 its
     balance never goes negative. *)
  for slot = 0 to 5 do
    (match sched.select ~slot ~predicted_good:(fun f -> f = 1) with
    | Some f -> sched.complete ~flow:f
    | None -> ());
    sched.on_slot_end ~slot
  done;
  check_bool "no debt below limit" true (Core.Wps.credit wps ~flow:1 >= 0)

let test_credit_limit_respected () =
  let wps =
    Core.Wps.create
      ~params:(Core.Params.swapa ~credit_limit:2 ~debit_limit:4 ())
      (mk_flows [| 1.; 1. |])
  in
  let sched = Core.Wps.instance wps in
  fill sched ~flow:0 ~count:20;
  fill sched ~flow:1 ~count:20;
  for slot = 0 to 11 do
    (match sched.select ~slot ~predicted_good:(fun f -> f = 1) with
    | Some f -> sched.complete ~flow:f
    | None -> ());
    sched.on_slot_end ~slot
  done;
  check_bool "credit capped" true (Core.Wps.credit wps ~flow:0 <= 2)

let test_indebted_flow_sits_out () =
  (* A flow with debt >= weight gets no slots until the debt decays. *)
  let wps =
    Core.Wps.create ~params:(Core.Params.swapa ()) (mk_flows [| 1.; 1. |])
  in
  let sched = Core.Wps.instance wps in
  fill sched ~flow:0 ~count:10;
  fill sched ~flow:1 ~count:10;
  (* flow0 bad for 4 slots: flow1 accumulates debt 2 while flow0 credits 2. *)
  for slot = 0 to 3 do
    (match sched.select ~slot ~predicted_good:(fun f -> f = 1) with
    | Some f -> sched.complete ~flow:f
    | None -> ());
    sched.on_slot_end ~slot
  done;
  (* Both now good: flow0 redeems its credits first; flow1 must wait. *)
  let order = run_good sched ~slots:3 in
  check_bool "flow0 monopolises the catch-up frame" true
    (List.for_all (fun f -> f = 0) order)

let test_tag_precedence_vs_slotted_access () =
  (* Section 7's worst-case discussion: IWFQ keeps precedence history in
     tags, so a mostly-errored flow transmits in *every* good slot it
     sees; WPS contends only in (shifted) designated slots and can miss
     good slots.  The flow's channel is good 1 slot in 5; the peers are
     saturated and error-free. *)
  let horizon = 500 in
  let n = 5 in
  let good_for_flow0 slot = slot mod 5 = 2 in
  let served_flow0 sched =
    fill sched ~flow:0 ~count:1000;
    for f = 1 to n - 1 do
      fill sched ~flow:f ~count:1000
    done;
    let count = ref 0 in
    for slot = 0 to horizon - 1 do
      (match
         sched.Core.Wireless_sched.select ~slot ~predicted_good:(fun f ->
             if f = 0 then good_for_flow0 slot else true)
       with
      | Some 0 ->
          incr count;
          sched.complete ~flow:0
      | Some f -> sched.complete ~flow:f
      | None -> ());
      sched.on_slot_end ~slot
    done;
    !count
  in
  let weights = Array.make n 1. in
  let wrr_f0 =
    served_flow0
      (Core.Wps.instance (Core.Wps.create ~params:Core.Params.wrr (mk_flows weights)))
  in
  let iwfq_f0 =
    served_flow0 (Core.Iwfq.instance (Core.Iwfq.create (mk_flows weights))) in
  (* 100 good slots in the horizon: IWFQ uses essentially all of them. *)
  check_bool "IWFQ uses every good slot" true (iwfq_f0 >= 95);
  check_bool "WRR misses good slots" true (wrr_f0 < iwfq_f0)

let test_frame_snapshot_and_position () =
  let wps = Core.Wps.create ~params:Core.Params.wrr (mk_flows [| 1.; 1. |]) in
  let sched = Core.Wps.instance wps in
  fill sched ~flow:0 ~count:2;
  fill sched ~flow:1 ~count:2;
  ignore (sched.select ~slot:0 ~predicted_good:all_good);
  check_int "position advanced" 1 (Core.Wps.frame_position wps);
  check_int "one slot left" 1 (Array.length (Core.Wps.frame_snapshot wps))

let test_swap_window_limits_reach () =
  (* Frame [0;1;2;3]: with window 1, flow0's bad slot cannot reach flow1 at
     distance 1... window w allows positions pos+1..pos+w-1?  The window
     counts slots ahead: w=1 means only pos+0 — no swap at all; w=2 reaches
     the next slot. *)
  (* Only flow 3 (last in frame) has a good channel; flows 0-2 bad. *)
  let pred f = f = 3 in
  (* Whole frame: the intra swap relocates flow 0 into flow 3's old slot,
     so flow 0 keeps an in-frame chance. *)
  let wps_full =
    Core.Wps.create ~params:(Core.Params.swapa ()) (mk_flows [| 1.; 1.; 1.; 1. |])
  in
  let s = Core.Wps.instance wps_full in
  for f = 0 to 3 do
    fill s ~flow:f ~count:4
  done;
  Alcotest.(check int) "whole frame swaps in flow3" 3
    (Option.get (s.select ~slot:0 ~predicted_good:pred));
  Alcotest.(check (array int)) "flow0 relocated in frame" [| 1; 2; 0 |]
    (Core.Wps.frame_snapshot wps_full);
  (* Window 2 from position 0 reaches position 1 only (flow 1, bad): no
     intra swap; the ring (inter-frame) still finds flow 3, and the frame
     order is untouched. *)
  let wps_win =
    Core.Wps.create
      ~params:(Core.Params.swapa ~swap_window:2 ())
      (mk_flows [| 1.; 1.; 1.; 1. |])
  in
  let s = Core.Wps.instance wps_win in
  for f = 0 to 3 do
    fill s ~flow:f ~count:4
  done;
  Alcotest.(check int) "window too short, ring supplies flow3" 3
    (Option.get (s.select ~slot:0 ~predicted_good:pred));
  Alcotest.(check (array int)) "frame order untouched" [| 1; 2; 3 |]
    (Core.Wps.frame_snapshot wps_win)

let test_validate_params () =
  Alcotest.check_raises "inter-frame swap needs credits"
    (Invalid_argument "Params: inter-frame swapping requires credit accounting")
    (fun () ->
      Core.Params.validate_wps
        {
          Core.Params.blind_wrr with
          swap_inter = true;
          swap_intra = true;
          skip_on_predicted_error = true;
        })

let suite =
  [
    ("wrr weighted frames", `Quick, test_wrr_weighted_frames);
    ("frames are spread", `Quick, test_frames_spread_not_clustered);
    ("work conserving on empty peer", `Quick, test_work_conserving_when_peer_empty);
    ("mid-frame backlog waits", `Quick, test_midframe_backlog_waits_for_next_frame);
    ("blind transmits into error", `Quick, test_blind_transmits_into_error);
    ("wrr skips error slot", `Quick, test_wrr_skips_error_slot);
    ("idle under universal error", `Quick, test_idle_when_universal_error);
    ("noswap earns credit", `Quick, test_noswap_earns_credit);
    ("wrr never credits", `Quick, test_wrr_never_credits);
    ("no credit for empty queue", `Quick, test_no_credit_for_empty_queue);
    ("swapw intra-frame swap", `Quick, test_swapw_intra_frame_swap);
    ("swapa debits substitute", `Quick, test_swapa_debits_the_substitute);
    ("debit limit respected", `Quick, test_debit_limit_respected);
    ("credit limit respected", `Quick, test_credit_limit_respected);
    ("indebted flow sits out", `Quick, test_indebted_flow_sits_out);
    ("tag precedence vs slotted access", `Quick, test_tag_precedence_vs_slotted_access);
    ("frame snapshot/position", `Quick, test_frame_snapshot_and_position);
    ("swap window limits reach", `Quick, test_swap_window_limits_reach);
    ("param validation", `Quick, test_validate_params);
  ]
