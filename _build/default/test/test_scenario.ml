(* Tests for the scenario description language. *)

module Core = Wfs_core
module S = Core.Scenario

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let example_text =
  {|# Example-1-like cell
horizon 5000
seed 7
predictor one-step
flow weight=1 drop=retx:2 source=mmpp:0.2 channel=ge:0.07,0.03
flow weight=1 source=cbr:2 channel=good
|}

let test_parse_basic () =
  let s = S.parse example_text in
  check_int "horizon" 5_000 s.S.horizon;
  check_int "seed" 7 s.S.seed;
  check_int "two flows" 2 (Array.length s.S.setups);
  check_bool "predictor one-step" true
    (s.S.predictor = Wfs_channel.Predictor.One_step);
  let flows = S.flows s in
  Alcotest.(check (float 1e-9)) "weight" 1. flows.(0).Core.Params.weight;
  check_bool "drop policy" true
    (flows.(0).Core.Params.drop = Core.Params.Retx_limit 2);
  check_bool "default drop" true (flows.(1).Core.Params.drop = Core.Params.No_drop)

let test_parse_defaults () =
  let s = S.parse "flow source=cbr:2 channel=good\n" in
  check_int "default horizon" 100_000 s.S.horizon;
  check_int "default seed" 42 s.S.seed

let test_parse_all_sources_channels () =
  let text =
    {|flow source=poisson:0.1 channel=bernoulli:0.9
flow source=onoff:0.1,0.2 channel=badburst:5,10
flow source=pareto:4,12 channel=ge:0.1,0.1
flow weight=3 drop=retx-delay:2,50 source=mmpp:0.05 channel=good
flow drop=delay:100 source=cbr:4 channel=good
|}
  in
  let s = S.parse text in
  check_int "five flows" 5 (Array.length s.S.setups)

let test_parse_snoop_predictor () =
  let s = S.parse "predictor snoop:4\nflow source=cbr:2 channel=good\n" in
  check_bool "snoop predictor" true
    (s.S.predictor = Wfs_channel.Predictor.Periodic_snoop 4)

let test_parse_errors () =
  (* A few malformed inputs; each must raise with a useful message. *)
  let expect_error text =
    match S.parse text with
    | exception S.Parse_error _ -> ()
    | _ -> Alcotest.failf "expected Parse_error for %S" text
  in
  expect_error "";
  expect_error "flow channel=good\n";
  expect_error "flow source=cbr:2\n";
  expect_error "flow source=warp:9 channel=good\n";
  expect_error "flow source=cbr:x channel=good\n";
  expect_error "bogus directive\n";
  expect_error "horizon many\nflow source=cbr:2 channel=good\n";
  expect_error "flow source=cbr:2 channel=good\nseed 3\n"

let test_parse_error_line_number () =
  match S.parse "horizon 10\n# fine\nflow source=cbr:2\n" with
  | exception S.Parse_error { line; _ } -> check_int "line number" 3 line
  | _ -> Alcotest.fail "expected Parse_error"

let test_run_scenario () =
  let s = S.parse example_text in
  let m = S.run s in
  check_bool "arrivals happened" true (Core.Metrics.arrivals m ~flow:0 > 500);
  check_bool "deliveries happened" true (Core.Metrics.delivered m ~flow:1 > 2_000)

let test_run_deterministic () =
  let run () =
    let m = S.run (S.parse example_text) in
    (Core.Metrics.mean_delay m ~flow:0, Core.Metrics.delivered m ~flow:0)
  in
  check_bool "reproducible" true (run () = run ())

(* The scenario files shipped in examples/ must always parse. *)
let test_shipped_scenarios_parse () =
  let candidates =
    [ "examples/cell.scenario"; "../examples/cell.scenario" ]
  in
  let path =
    List.find_opt Sys.file_exists candidates
  in
  match path with
  | None -> () (* running from an unexpected cwd; covered by CLI usage *)
  | Some cell ->
      let s = S.load cell in
      check_int "cell.scenario flows" 4 (Array.length s.S.setups);
      let uplink = Filename.concat (Filename.dirname cell) "uplink.scenario" in
      let u = S.load uplink in
      check_int "uplink.scenario flows" 4 (Array.length u.S.setups);
      let hosts = Array.map fst u.S.addrs in
      Alcotest.(check (array int)) "uplink hosts" [| 1; 2; 2; 3 |] hosts;
      check_bool "directions" true
        (Array.to_list u.S.addrs
        |> List.map snd
        |> ( = ) [ S.Up; S.Up; S.Up; S.Down ])

let test_preset_names_for_extensions () =
  Alcotest.(check string) "cifq name" "CIF-Q-P"
    (Wfs_core.Presets.algorithm_name Wfs_core.Presets.Cifq_alg
       Wfs_core.Presets.Predicted);
  Alcotest.(check string) "csdps name" "CSDPS"
    (Wfs_core.Presets.algorithm_name Wfs_core.Presets.Csdps_alg
       Wfs_core.Presets.Predicted)

let test_load_file () =
  let path = Filename.temp_file "wfs_scenario" ".txt" in
  let oc = open_out path in
  output_string oc example_text;
  close_out oc;
  let s = S.load path in
  Sys.remove path;
  check_int "loaded flows" 2 (Array.length s.S.setups)

let suite =
  [
    ("parse basic", `Quick, test_parse_basic);
    ("parse defaults", `Quick, test_parse_defaults);
    ("parse all sources/channels", `Quick, test_parse_all_sources_channels);
    ("parse snoop predictor", `Quick, test_parse_snoop_predictor);
    ("parse errors", `Quick, test_parse_errors);
    ("parse error line number", `Quick, test_parse_error_line_number);
    ("run scenario", `Quick, test_run_scenario);
    ("run deterministic", `Quick, test_run_deterministic);
    ("load file", `Quick, test_load_file);
    ("shipped scenarios parse", `Quick, test_shipped_scenarios_parse);
    ("extension preset names", `Quick, test_preset_names_for_extensions);
  ]
