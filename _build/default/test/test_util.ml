(* Unit and property tests for wfs_util: PRNG, heap, statistics, ring,
   table formatting. *)

module Rng = Wfs_util.Rng
module Heap = Wfs_util.Heap
module Stats = Wfs_util.Stats
module Ring = Wfs_util.Ring
module Tablefmt = Wfs_util.Tablefmt

let check_float = Alcotest.(check (float 1e-9))
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Rng --- *)

let test_rng_determinism () =
  let a = Rng.create 7 and b = Rng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_copy () =
  let a = Rng.create 3 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  for _ = 1 to 50 do
    Alcotest.(check int64) "copy replays" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_split_independent () =
  let a = Rng.create 11 in
  let b = Rng.split a in
  let xs = Array.init 64 (fun _ -> Rng.bits64 a) in
  let ys = Array.init 64 (fun _ -> Rng.bits64 b) in
  check_bool "streams differ" true (xs <> ys)

let test_rng_float_range () =
  let rng = Rng.create 5 in
  for _ = 1 to 10_000 do
    let x = Rng.float rng in
    check_bool "in [0,1)" true (x >= 0. && x < 1.)
  done

let test_rng_int_range () =
  let rng = Rng.create 6 in
  let counts = Array.make 7 0 in
  for _ = 1 to 70_000 do
    let k = Rng.int rng 7 in
    counts.(k) <- counts.(k) + 1
  done;
  Array.iteri
    (fun i c ->
      check_bool (Printf.sprintf "bucket %d near uniform" i) true
        (c > 9_000 && c < 11_000))
    counts

let test_rng_exponential_mean () =
  let rng = Rng.create 8 in
  let s = Stats.Summary.create () in
  for _ = 1 to 50_000 do
    Stats.Summary.add s (Rng.exponential rng ~rate:2.)
  done;
  check_bool "mean near 0.5" true (abs_float (Stats.Summary.mean s -. 0.5) < 0.01)

let test_rng_poisson_mean_var () =
  let rng = Rng.create 9 in
  let s = Stats.Summary.create () in
  for _ = 1 to 50_000 do
    Stats.Summary.add s (float_of_int (Rng.poisson rng ~mean:3.))
  done;
  check_bool "mean near 3" true (abs_float (Stats.Summary.mean s -. 3.) < 0.05);
  check_bool "variance near 3" true
    (abs_float (Stats.Summary.variance s -. 3.) < 0.15)

let test_rng_geometric_mean () =
  let rng = Rng.create 10 in
  let s = Stats.Summary.create () in
  let p = 0.25 in
  for _ = 1 to 50_000 do
    Stats.Summary.add s (float_of_int (Rng.geometric rng ~p))
  done;
  (* mean of failures-before-success = (1-p)/p = 3 *)
  check_bool "mean near 3" true (abs_float (Stats.Summary.mean s -. 3.) < 0.08)

let test_rng_bernoulli () =
  let rng = Rng.create 12 in
  let hits = ref 0 in
  for _ = 1 to 100_000 do
    if Rng.bernoulli rng 0.3 then incr hits
  done;
  check_bool "p near 0.3" true
    (abs_float ((float_of_int !hits /. 100_000.) -. 0.3) < 0.01)

let test_rng_shuffle_permutation () =
  let rng = Rng.create 13 in
  let a = Array.init 20 Fun.id in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 20 Fun.id) sorted

(* --- Heap --- *)

let test_heap_order () =
  let h = Heap.create ~leq:(fun a b -> a <= b) () in
  List.iter (Heap.push h) [ 5; 1; 4; 1; 3; 9; 2 ];
  let out = List.init (Heap.length h) (fun _ -> Heap.pop_exn h) in
  Alcotest.(check (list int)) "sorted" [ 1; 1; 2; 3; 4; 5; 9 ] out

let test_heap_fifo_ties () =
  let h = Heap.create ~leq:(fun (a, _) (b, _) -> a <= b) () in
  List.iter (Heap.push h) [ (1, "a"); (1, "b"); (0, "z"); (1, "c") ];
  let labels = List.init 4 (fun _ -> snd (Heap.pop_exn h)) in
  Alcotest.(check (list string)) "ties pop FIFO" [ "z"; "a"; "b"; "c" ] labels

let test_heap_empty () =
  let h = Heap.create ~leq:(fun a b -> a <= b) () in
  check_bool "empty" true (Heap.is_empty h);
  Alcotest.(check (option int)) "pop empty" None (Heap.pop h);
  Alcotest.(check (option int)) "peek empty" None (Heap.peek h);
  Alcotest.check_raises "pop_exn raises"
    (Invalid_argument "Heap.pop_exn: empty heap") (fun () ->
      ignore (Heap.pop_exn h))

let test_heap_clear () =
  let h = Heap.create ~leq:(fun a b -> a <= b) () in
  List.iter (Heap.push h) [ 3; 1; 2 ];
  Heap.clear h;
  check_int "cleared" 0 (Heap.length h);
  Heap.push h 42;
  Alcotest.(check (option int)) "usable after clear" (Some 42) (Heap.pop h)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap drains in sorted order" ~count:200
    QCheck.(list int)
    (fun xs ->
      let h = Heap.create ~leq:(fun a b -> a <= b) () in
      List.iter (Heap.push h) xs;
      let out = List.init (List.length xs) (fun _ -> Heap.pop_exn h) in
      out = List.sort compare xs)

let remove_one x l =
  let rec go acc = function
    | [] -> List.rev acc
    | y :: tl -> if y = x then List.rev_append acc tl else go (y :: acc) tl
  in
  go [] l

let prop_heap_interleaved =
  QCheck.Test.make ~name:"heap pop is minimum under interleaved ops" ~count:200
    QCheck.(list (pair bool small_int))
    (fun ops ->
      let h = Heap.create ~leq:(fun a b -> a <= b) () in
      let model = ref [] in
      List.for_all
        (fun (is_push, x) ->
          if is_push then begin
            Heap.push h x;
            model := x :: !model;
            true
          end
          else
            match (Heap.pop h, !model) with
            | None, [] -> true
            | Some v, (_ :: _ as l) ->
                let m = List.fold_left min max_int l in
                model := remove_one m l;
                v = m
            | Some _, [] | None, _ :: _ -> false)
        ops)

(* --- Stats --- *)

let test_summary_basic () =
  let s = Stats.Summary.create () in
  List.iter (Stats.Summary.add s) [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ];
  check_int "count" 8 (Stats.Summary.count s);
  check_float "mean" 5. (Stats.Summary.mean s);
  check_float "variance" 4. (Stats.Summary.variance s);
  check_float "stddev" 2. (Stats.Summary.stddev s);
  check_float "min" 2. (Stats.Summary.min s);
  check_float "max" 9. (Stats.Summary.max s);
  check_float "total" 40. (Stats.Summary.total s)

let test_summary_empty () =
  let s = Stats.Summary.create () in
  check_float "mean of empty" 0. (Stats.Summary.mean s);
  check_float "variance of empty" 0. (Stats.Summary.variance s);
  check_bool "min is nan" true (Float.is_nan (Stats.Summary.min s))

let test_summary_merge () =
  let a = Stats.Summary.create () and b = Stats.Summary.create () in
  let all = Stats.Summary.create () in
  List.iter
    (fun x ->
      Stats.Summary.add (if x < 5. then a else b) x;
      Stats.Summary.add all x)
    [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ];
  let m = Stats.Summary.merge a b in
  check_int "merged count" (Stats.Summary.count all) (Stats.Summary.count m);
  check_float "merged mean" (Stats.Summary.mean all) (Stats.Summary.mean m);
  Alcotest.(check (float 1e-6))
    "merged variance" (Stats.Summary.variance all) (Stats.Summary.variance m)

let prop_summary_matches_naive =
  QCheck.Test.make ~name:"Welford matches naive mean/variance" ~count:200
    QCheck.(list_of_size Gen.(1 -- 50) (float_bound_exclusive 1000.))
    (fun xs ->
      let s = Stats.Summary.create () in
      List.iter (Stats.Summary.add s) xs;
      let n = float_of_int (List.length xs) in
      let mean = List.fold_left ( +. ) 0. xs /. n in
      let var =
        List.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.)) 0. xs /. n
      in
      abs_float (Stats.Summary.mean s -. mean) < 1e-6
      && (List.length xs < 2 || abs_float (Stats.Summary.variance s -. var) < 1e-4))

let test_histogram_percentile () =
  let h = Stats.Histogram.create ~bin_width:1.0 () in
  for i = 1 to 100 do
    Stats.Histogram.add h (float_of_int i)
  done;
  check_float "p50" 50. (Stats.Histogram.percentile h 50.);
  check_float "p99" 99. (Stats.Histogram.percentile h 99.);
  check_float "p100" 100. (Stats.Histogram.percentile h 100.);
  check_bool "empty is nan" true
    (Float.is_nan (Stats.Histogram.percentile (Stats.Histogram.create ()) 50.))

let test_counter_ratio () =
  let num = Stats.Counter.create () and den = Stats.Counter.create () in
  check_float "0/0" 0. (Stats.Counter.ratio num ~over:den);
  Stats.Counter.incr_by den 4;
  Stats.Counter.incr num;
  check_float "1/4" 0.25 (Stats.Counter.ratio num ~over:den)

(* --- Ring --- *)

let test_ring_cycle () =
  let r = Ring.create [| 10; 20; 30 |] in
  let xs = List.init 7 (fun _ -> Option.get (Ring.next r)) in
  Alcotest.(check (list int)) "cycles" [ 10; 20; 30; 10; 20; 30; 10 ] xs

let test_ring_empty () =
  let r = Ring.create [||] in
  Alcotest.(check (option int)) "next of empty" None (Ring.next r);
  Alcotest.(check (option int)) "match of empty" None
    (Ring.next_matching r (fun _ -> true))

let test_ring_next_matching () =
  let r = Ring.create [| 1; 2; 3; 4 |] in
  Alcotest.(check (option int)) "first even" (Some 2)
    (Ring.next_matching r (fun x -> x mod 2 = 0));
  Alcotest.(check (option int)) "next even from marker" (Some 4)
    (Ring.next_matching r (fun x -> x mod 2 = 0));
  Alcotest.(check (option int)) "wraps around" (Some 2)
    (Ring.next_matching r (fun x -> x mod 2 = 0))

let test_ring_next_matching_none () =
  let r = Ring.create [| 1; 3; 5 |] in
  ignore (Ring.next r);
  let before = Ring.marker r in
  Alcotest.(check (option int)) "no match" None
    (Ring.next_matching r (fun x -> x mod 2 = 0));
  Alcotest.(check (option int)) "marker restored" before (Ring.marker r)

let test_ring_rebuild () =
  let r = Ring.create [| 1; 2 |] in
  ignore (Ring.next r);
  Ring.rebuild r [| 7; 8; 9 |];
  check_int "new length" 3 (Ring.length r);
  Alcotest.(check (option int)) "restarts" (Some 7) (Ring.next r)

(* --- Tablefmt --- *)

let test_table_render () =
  let t = Tablefmt.create ~title:"T" ~columns:[ "a"; "bb" ] in
  Tablefmt.add_row t [ "1"; "2" ];
  Tablefmt.add_row t [ "333" ];
  let s = Tablefmt.render t in
  check_bool "has title" true (String.length s > 0 && String.sub s 0 1 = "T");
  (* title + header + separator + 2 rows, with a trailing newline *)
  check_bool "pads short rows" true
    (List.length (String.split_on_char '\n' s) = 6)

let test_cell_of_float () =
  Alcotest.(check string) "integer renders bare" "3" (Tablefmt.cell_of_float 3.0);
  Alcotest.(check string) "nan renders dash" "-" (Tablefmt.cell_of_float nan);
  Alcotest.(check string)
    "decimals respected" "3.14"
    (Tablefmt.cell_of_float ~decimals:2 3.14159)

let suite =
  [
    ("rng determinism", `Quick, test_rng_determinism);
    ("rng copy", `Quick, test_rng_copy);
    ("rng split independence", `Quick, test_rng_split_independent);
    ("rng float range", `Quick, test_rng_float_range);
    ("rng int uniformity", `Quick, test_rng_int_range);
    ("rng exponential mean", `Quick, test_rng_exponential_mean);
    ("rng poisson mean/var", `Quick, test_rng_poisson_mean_var);
    ("rng geometric mean", `Quick, test_rng_geometric_mean);
    ("rng bernoulli", `Quick, test_rng_bernoulli);
    ("rng shuffle permutation", `Quick, test_rng_shuffle_permutation);
    ("heap order", `Quick, test_heap_order);
    ("heap FIFO ties", `Quick, test_heap_fifo_ties);
    ("heap empty", `Quick, test_heap_empty);
    ("heap clear", `Quick, test_heap_clear);
    QCheck_alcotest.to_alcotest prop_heap_sorts;
    QCheck_alcotest.to_alcotest prop_heap_interleaved;
    ("summary basic", `Quick, test_summary_basic);
    ("summary empty", `Quick, test_summary_empty);
    ("summary merge", `Quick, test_summary_merge);
    QCheck_alcotest.to_alcotest prop_summary_matches_naive;
    ("histogram percentile", `Quick, test_histogram_percentile);
    ("counter ratio", `Quick, test_counter_ratio);
    ("ring cycle", `Quick, test_ring_cycle);
    ("ring empty", `Quick, test_ring_empty);
    ("ring next_matching", `Quick, test_ring_next_matching);
    ("ring next_matching none", `Quick, test_ring_next_matching_none);
    ("ring rebuild", `Quick, test_ring_rebuild);
    ("table render", `Quick, test_table_render);
    ("table float cells", `Quick, test_cell_of_float);
  ]
