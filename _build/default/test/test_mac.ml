(* Tests for the MAC substrate: backlog beliefs, notification contention,
   and the integrated cell simulation (uplink invisibility, piggybacking,
   control slots). *)

module Mac = Wfs_mac
module Core = Wfs_core
module Rng = Wfs_util.Rng

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- Frame types --- *)

let test_control_addr () =
  check_bool "control is control" true (Mac.Frame.is_control Mac.Frame.control_addr);
  check_bool "data addr is not" false
    (Mac.Frame.is_control { Mac.Frame.host = 1; direction = Mac.Frame.Uplink; index = 0 })

(* --- Backlog set --- *)

let test_backlog_report_lifecycle () =
  let b = Mac.Backlog_set.create ~n_flows:3 in
  check_bool "initially unknown" false (Mac.Backlog_set.known b ~flow:0);
  Mac.Backlog_set.report b ~flow:0 ~queue:2;
  check_bool "admitted" true (Mac.Backlog_set.known b ~flow:0);
  check_int "belief" 2 (Mac.Backlog_set.believed_queue b ~flow:0);
  Mac.Backlog_set.decrement b ~flow:0;
  Mac.Backlog_set.decrement b ~flow:0;
  check_bool "removed at zero" false (Mac.Backlog_set.known b ~flow:0)

let test_backlog_notify_and_list () =
  let b = Mac.Backlog_set.create ~n_flows:3 in
  Mac.Backlog_set.notify b ~flow:2 ~queue:0;
  check_int "notify admits at least 1" 1 (Mac.Backlog_set.believed_queue b ~flow:2);
  Mac.Backlog_set.report b ~flow:1 ~queue:4;
  Alcotest.(check (list int)) "known list sorted" [ 1; 2 ] (Mac.Backlog_set.known_flows b);
  check_int "cardinal" 2 (Mac.Backlog_set.cardinal b)

(* --- Contention --- *)

let test_contention_single_contender_wins () =
  let out =
    Mac.Contention.contend ~rng:(Rng.create 1) ~minislots:4 ~contenders:[ 7 ]
  in
  Alcotest.(check (list int)) "solo always wins" [ 7 ] out.Mac.Contention.winners

let test_contention_conservation () =
  let contenders = [ 1; 2; 3; 4; 5 ] in
  let out = Mac.Contention.contend ~rng:(Rng.create 2) ~minislots:4 ~contenders in
  check_int "winners + collided = contenders"
    (List.length contenders)
    (List.length out.Mac.Contention.winners + List.length out.Mac.Contention.collided)

let test_contention_statistics () =
  (* Empirical success rate matches (1 - 1/m)^(k-1). *)
  let rng = Rng.create 3 in
  let trials = 20_000 and m = 4 and k = 3 in
  let wins = ref 0 in
  for _ = 1 to trials do
    let out =
      Mac.Contention.contend ~rng ~minislots:m ~contenders:(List.init k Fun.id)
    in
    if List.mem 0 out.Mac.Contention.winners then incr wins
  done;
  let expected = Mac.Contention.success_probability ~minislots:m ~contenders:k in
  let measured = float_of_int !wins /. float_of_int trials in
  check_bool "matches analytic probability" true (abs_float (measured -. expected) < 0.01)

let test_contention_invalid () =
  Alcotest.check_raises "minislots 0"
    (Invalid_argument "Contention.contend: minislots must be > 0") (fun () ->
      ignore (Mac.Contention.contend ~rng:(Rng.create 1) ~minislots:0 ~contenders:[]))

(* --- Integrated MAC simulation --- *)

let uplink host index = { Mac.Frame.host; direction = Mac.Frame.Uplink; index }
let downlink host index = { Mac.Frame.host; direction = Mac.Frame.Downlink; index }

let spec ?(drop = Core.Params.No_drop) ~addr ~source ~channel () =
  { Mac.Mac_sim.addr; weight = 1.; source; channel; drop }

let cbr interarrival = Wfs_traffic.Cbr.create ~interarrival ()
let good () = Wfs_channel.Error_free.create ()

let test_mac_downlink_only () =
  (* Downlink flows need no notifications: everything is delivered and no
     contention happens. *)
  let cfg =
    Mac.Mac_sim.config ~rng:(Rng.create 4) ~horizon:400
      [|
        spec ~addr:(downlink 1 0) ~source:(cbr 4.) ~channel:(good ()) ();
        spec ~addr:(downlink 2 0) ~source:(cbr 4.) ~channel:(good ()) ();
      |]
  in
  let r = Mac.Mac_sim.run cfg in
  check_int "no notifications" 0 r.Mac.Mac_sim.notifications_won;
  check_int "flow0 all delivered" 100
    (Core.Metrics.delivered r.Mac.Mac_sim.metrics ~flow:0);
  check_bool "control slots issued" true (r.Mac.Mac_sim.control_slots > 0)

let test_mac_uplink_needs_notification () =
  (* A single uplink flow starts invisible; its first packet must wait for
     a control slot. *)
  let cfg =
    Mac.Mac_sim.config ~rng:(Rng.create 5) ~horizon:400
      [| spec ~addr:(uplink 1 0) ~source:(cbr 4.) ~channel:(good ()) () |]
  in
  let r = Mac.Mac_sim.run cfg in
  check_bool "notifications happened" true (r.Mac.Mac_sim.notifications_won > 0);
  check_bool "most packets delivered" true
    (Core.Metrics.delivered r.Mac.Mac_sim.metrics ~flow:0 > 80);
  (* With a lightly loaded cell a control slot is almost always pending, so
     reveals are fast — but never negative. *)
  check_bool "reveal delay sane" true (r.Mac.Mac_sim.mean_reveal_delay >= 0.)

let test_mac_piggyback_avoids_contention () =
  (* A saturated uplink flow reveals its arrivals by piggybacking: after
     the first notification, contention is rarely needed. *)
  let cfg =
    Mac.Mac_sim.config ~rng:(Rng.create 6) ~horizon:400
      [| spec ~addr:(uplink 1 0) ~source:(cbr 1.2) ~channel:(good ()) () |]
  in
  let r = Mac.Mac_sim.run cfg in
  check_bool "piggyback dominates" true
    (r.Mac.Mac_sim.piggyback_reveals > 5 * r.Mac.Mac_sim.notifications_won)

let test_mac_same_host_flows_share_piggyback () =
  (* Host 1 has two uplink flows; the second flow's packets ride on the
     first flow's transmissions instead of contending. *)
  let cfg =
    Mac.Mac_sim.config ~rng:(Rng.create 7) ~horizon:600
      [|
        spec ~addr:(uplink 1 0) ~source:(cbr 2.) ~channel:(good ()) ();
        spec ~addr:(uplink 1 1)
          ~source:(Wfs_traffic.Trace_source.of_slots [ 100; 200; 300 ])
          ~channel:(good ()) ();
      |]
  in
  let r = Mac.Mac_sim.run cfg in
  check_int "second flow fully served" 3
    (Core.Metrics.delivered r.Mac.Mac_sim.metrics ~flow:1)

let test_mac_error_channel_retransmits () =
  (* Data flows get weight 4 so the always-backlogged unit-weight control
     flow consumes ~1/9 of the capacity rather than a third. *)
  let chan =
    Wfs_channel.Gilbert_elliott.create ~rng:(Rng.create 8) ~pg:0.07 ~pe:0.03 ()
  in
  let heavy spec_ = { spec_ with Mac.Mac_sim.weight = 4. } in
  let cfg =
    Mac.Mac_sim.config ~rng:(Rng.create 9) ~horizon:2_000
      [|
        heavy
          (spec ~addr:(uplink 1 0) ~source:(cbr 5.) ~channel:chan
             ~drop:(Core.Params.Retx_limit 2) ());
        heavy (spec ~addr:(downlink 2 0) ~source:(cbr 2.) ~channel:(good ()) ());
      |]
  in
  let r = Mac.Mac_sim.run cfg in
  let m = r.Mac.Mac_sim.metrics in
  check_bool "some deliveries on errored uplink" true
    (Core.Metrics.delivered m ~flow:0 > 0);
  check_bool "downlink mostly unharmed" true
    (Core.Metrics.mean_delay m ~flow:1 < 10.)

let test_mac_slot_accounting () =
  let cfg =
    Mac.Mac_sim.config ~rng:(Rng.create 10) ~horizon:500
      [| spec ~addr:(downlink 1 0) ~source:(cbr 2.) ~channel:(good ()) () |]
  in
  let r = Mac.Mac_sim.run cfg in
  check_int "slots partitioned" 500
    (r.Mac.Mac_sim.control_slots + r.Mac.Mac_sim.data_slots + r.Mac.Mac_sim.idle_slots)

let test_mac_delay_bound_drops_invisible_packets () =
  (* Uplink packets stuck invisible past the delay bound are dropped by the
     host and counted as losses. *)
  let cfg =
    Mac.Mac_sim.config ~rng:(Rng.create 20) ~horizon:100
      [|
        (* A flow whose channel is dead: its notification can win, but no
           data slot ever succeeds, so queued + invisible packets age out. *)
        spec
          ~addr:(uplink 1 0)
          ~drop:(Core.Params.Delay_bound 10)
          ~source:(Wfs_traffic.Trace_source.create [ (0, 5) ])
          ~channel:(Wfs_channel.Periodic_ch.bad_burst ~start:0 ~length:200)
          ();
      |]
  in
  let r = Mac.Mac_sim.run cfg in
  check_int "all packets aged out" 5
    (Core.Metrics.dropped r.Mac.Mac_sim.metrics ~flow:0)

let test_scenario_mac_addresses () =
  let s =
    Core.Scenario.parse
      "flow host=7 dir=up source=cbr:2 channel=good\nflow source=cbr:2 channel=good\n"
  in
  Alcotest.(check (pair int bool))
    "explicit host/up" (7, true)
    (let h, d = s.Core.Scenario.addrs.(0) in
     (h, d = Core.Scenario.Up));
  Alcotest.(check (pair int bool))
    "default host/down" (2, true)
    (let h, d = s.Core.Scenario.addrs.(1) in
     (h, d = Core.Scenario.Down))

let test_mac_config_validation () =
  Alcotest.check_raises "control address reserved"
    (Invalid_argument "Mac_sim.config: the control address is reserved")
    (fun () ->
      ignore
        (Mac.Mac_sim.config ~rng:(Rng.create 1) ~horizon:10
           [| spec ~addr:Mac.Frame.control_addr ~source:(cbr 2.) ~channel:(good ()) () |]));
  let dup = spec ~addr:(uplink 1 0) ~source:(cbr 2.) ~channel:(good ()) () in
  let dup2 = spec ~addr:(uplink 1 0) ~source:(cbr 2.) ~channel:(good ()) () in
  Alcotest.check_raises "duplicate address"
    (Invalid_argument "Mac_sim.config: duplicate flow address") (fun () ->
      ignore (Mac.Mac_sim.config ~rng:(Rng.create 1) ~horizon:10 [| dup; dup2 |]))

let suite =
  [
    ("control address", `Quick, test_control_addr);
    ("backlog report lifecycle", `Quick, test_backlog_report_lifecycle);
    ("backlog notify/list", `Quick, test_backlog_notify_and_list);
    ("contention solo win", `Quick, test_contention_single_contender_wins);
    ("contention conservation", `Quick, test_contention_conservation);
    ("contention statistics", `Quick, test_contention_statistics);
    ("contention invalid", `Quick, test_contention_invalid);
    ("mac downlink only", `Quick, test_mac_downlink_only);
    ("mac uplink notification", `Quick, test_mac_uplink_needs_notification);
    ("mac piggyback dominates", `Quick, test_mac_piggyback_avoids_contention);
    ("mac same-host piggyback", `Quick, test_mac_same_host_flows_share_piggyback);
    ("mac errored uplink", `Quick, test_mac_error_channel_retransmits);
    ("mac slot accounting", `Quick, test_mac_slot_accounting);
    ("mac delay bound on invisible packets", `Quick, test_mac_delay_bound_drops_invisible_packets);
    ("scenario mac addresses", `Quick, test_scenario_mac_addresses);
    ("mac config validation", `Quick, test_mac_config_validation);
  ]
