(* Tests for the extension modules: general Markov channels, heavy-tailed
   traffic, WF2Q+, fairness measurement, ALOHA notification contention —
   plus randomized invariant properties over the core schedulers. *)

module Rng = Wfs_util.Rng
module Core = Wfs_core
module Channel = Wfs_channel.Channel
module Markov = Wfs_channel.Markov_ch

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

(* --- Markov channel --- *)

let three_state =
  {
    Markov.transition =
      [|
        [| 0.9; 0.1; 0.0 |];
        [| 0.2; 0.6; 0.2 |];
        [| 0.0; 0.3; 0.7 |];
      |];
    good_prob = [| 1.0; 0.5; 0.0 |];
  }

let test_markov_validate () =
  Markov.validate three_state;
  Alcotest.check_raises "non-stochastic row"
    (Invalid_argument "Markov_ch: rows must sum to 1") (fun () ->
      Markov.validate
        { Markov.transition = [| [| 0.5; 0.4 |]; [| 0.5; 0.5 |] |];
          good_prob = [| 1.; 0. |] })

let test_markov_stationary () =
  (* Stationary distribution sums to 1 and is a fixed point. *)
  let pi = Markov.stationary three_state in
  check_bool "sums to 1" true
    (abs_float (Array.fold_left ( +. ) 0. pi -. 1.) < 1e-9);
  let next = Array.make 3 0. in
  Array.iteri
    (fun i p ->
      Array.iteri
        (fun j q -> next.(j) <- next.(j) +. (p *. q))
        three_state.Markov.transition.(i))
    pi;
  Array.iteri
    (fun j v -> check_bool "fixed point" true (abs_float (v -. pi.(j)) < 1e-6))
    next

let test_markov_matches_empirical () =
  let ch = Markov.create ~rng:(Rng.create 1) three_state in
  let good = ref 0 in
  let slots = 200_000 in
  for slot = 0 to slots - 1 do
    if Channel.state_is_good (Channel.advance ch ~slot) then incr good
  done;
  let expected = Markov.steady_state_good three_state in
  check_bool "empirical matches analytic" true
    (abs_float ((float_of_int !good /. float_of_int slots) -. expected) < 0.01)

let test_markov_ge_equivalence () =
  (* The GE special case has the same steady state as the closed form. *)
  let spec = Markov.of_gilbert_elliott ~pg:0.07 ~pe:0.03 in
  check_bool "PG = 0.7" true
    (abs_float (Markov.steady_state_good spec -. 0.7) < 1e-6)

(* --- Pareto on-off --- *)

let test_pareto_draw_support () =
  let rng = Rng.create 2 in
  for _ = 1 to 10_000 do
    let x = Wfs_traffic.Pareto_onoff.pareto ~rng ~shape:1.5 ~scale:3. in
    check_bool "support [scale, inf)" true (x >= 3.)
  done

let test_pareto_mean () =
  let rng = Rng.create 3 in
  let s = Wfs_util.Stats.Summary.create () in
  (* shape 2.5 has finite variance; mean = shape*scale/(shape-1) = 5/3*2 *)
  for _ = 1 to 200_000 do
    Wfs_util.Stats.Summary.add s
      (Wfs_traffic.Pareto_onoff.pareto ~rng ~shape:2.5 ~scale:2.)
  done;
  check_bool "mean near 10/3" true
    (abs_float (Wfs_util.Stats.Summary.mean s -. (10. /. 3.)) < 0.05)

let test_pareto_onoff_rate () =
  let src =
    Wfs_traffic.Pareto_onoff.create ~rng:(Rng.create 4) ~shape:2.5 ~mean_on:5.
      ~mean_off:15. ()
  in
  let total = ref 0 in
  let slots = 400_000 in
  for slot = 0 to slots - 1 do
    total := !total + Wfs_traffic.Arrival.arrivals src ~slot
  done;
  (* Nominal rate 0.25; rounding of period lengths shifts it slightly. *)
  check_bool "rate near 0.25" true
    (abs_float ((float_of_int !total /. float_of_int slots) -. 0.25) < 0.04)

let test_pareto_onoff_heavy_tail () =
  (* With shape 1.5 some ON burst should vastly exceed the mean. *)
  let src =
    Wfs_traffic.Pareto_onoff.create ~rng:(Rng.create 5) ~shape:1.5 ~mean_on:4.
      ~mean_off:12. ()
  in
  let longest = ref 0 and current = ref 0 in
  for slot = 0 to 200_000 - 1 do
    if Wfs_traffic.Arrival.arrivals src ~slot > 0 then begin
      incr current;
      if !current > !longest then longest := !current
    end
    else current := 0
  done;
  check_bool "a burst >= 20x mean occurred" true (!longest >= 80)

(* --- WF2Q+ --- *)

let job ~flow ~seq ~arrival ?(size = 1.) () =
  Wfs_wireline.Job.make ~flow ~seq ~arrival ~size

let test_wf2q_plus_weighted_shares () =
  let flows = Wfs_wireline.Flow.of_weights [| 1.; 3. |] in
  let jobs =
    List.concat
      (List.init 200 (fun seq ->
           [ job ~flow:0 ~seq ~arrival:0. (); job ~flow:1 ~seq ~arrival:0. () ]))
  in
  let completions =
    Wfs_wireline.Server.run ~capacity:1.
      (Wfs_wireline.Wf2q_plus.instance ~capacity:1. flows)
      jobs
  in
  let served = Wfs_wireline.Server.throughput_by_flow completions ~until:100. in
  check_bool "3:1 share" true
    (abs_float ((List.assoc 1 served /. List.assoc 0 served) -. 3.) < 0.2)

let test_wf2q_plus_matches_wf2q_order_when_backlogged () =
  (* All-backlogged equal-weight service orders coincide with WF2Q. *)
  let flows = Wfs_wireline.Flow.equal_weights 3 in
  let jobs =
    List.concat
      (List.init 30 (fun seq ->
           List.init 3 (fun flow -> job ~flow ~seq ~arrival:0. ())))
  in
  let order instance =
    List.map
      (fun c -> c.Wfs_wireline.Server.job.Wfs_wireline.Job.flow)
      (Wfs_wireline.Server.run ~capacity:1. instance jobs)
  in
  Alcotest.(check (list int))
    "same order as WF2Q"
    (order (Wfs_wireline.Wf2q.instance ~capacity:1. flows))
    (order (Wfs_wireline.Wf2q_plus.instance ~capacity:1. flows))

let test_wf2q_plus_virtual_time_monotone () =
  let flows = Wfs_wireline.Flow.equal_weights 2 in
  let s = Wfs_wireline.Wf2q_plus.create ~capacity:1. flows in
  let prev = ref (Wfs_wireline.Wf2q_plus.virtual_time s) in
  Wfs_wireline.Wf2q_plus.enqueue s (job ~flow:0 ~seq:0 ~arrival:0. ());
  Wfs_wireline.Wf2q_plus.enqueue s (job ~flow:1 ~seq:0 ~arrival:0. ());
  Wfs_wireline.Wf2q_plus.enqueue s (job ~flow:1 ~seq:1 ~arrival:0. ());
  for _ = 1 to 3 do
    ignore (Wfs_wireline.Wf2q_plus.dequeue s ~time:0.);
    let v = Wfs_wireline.Wf2q_plus.virtual_time s in
    check_bool "monotone" true (v >= !prev);
    prev := v
  done

(* --- Fairness --- *)

let test_jain_extremes () =
  check_float "all equal" 1. (Core.Fairness.jain [| 2.; 2.; 2. |]);
  check_float "single winner" 0.25 (Core.Fairness.jain [| 4.; 0.; 0.; 0. |]);
  check_float "empty vacuous" 1. (Core.Fairness.jain [||])

let test_max_normalized_gap () =
  check_float "weighted gap" 1.
    (Core.Fairness.max_normalized_gap ~weights:[| 1.; 2. |] ~service:[| 1.; 4. |]);
  check_float "fair is zero" 0.
    (Core.Fairness.max_normalized_gap ~weights:[| 1.; 3. |] ~service:[| 2.; 6. |])

let test_fairness_monitor_on_fair_schedule () =
  (* Two saturated flows, error-free, equal weights: windows should be
     nearly perfectly fair. *)
  let flows =
    Array.init 2 (fun id -> Core.Params.flow ~id ~weight:1. ())
  in
  let sched = Core.Wps.instance (Core.Wps.create ~params:Core.Params.wrr flows) in
  let monitor =
    Core.Fairness.Monitor.create ~weights:[| 1.; 1. |] ~window:50 ~sched
  in
  let setups =
    Array.init 2 (fun i ->
        {
          Core.Simulator.flow = flows.(i);
          source = Wfs_traffic.Cbr.create ~interarrival:1. ();
          channel = Wfs_channel.Error_free.create ();
        })
  in
  let cfg =
    Core.Simulator.config
      ~observer:(Core.Fairness.Monitor.observer monitor)
      ~horizon:5_000 setups
  in
  ignore (Core.Simulator.run cfg sched);
  check_bool "windows sampled" true (Core.Fairness.Monitor.windows_sampled monitor > 50);
  check_bool "near-perfect Jain" true (Core.Fairness.Monitor.mean_jain monitor > 0.999);
  check_bool "tiny gap" true (Core.Fairness.Monitor.worst_gap monitor <= 1.)

let test_fairness_monitor_detects_unfairness () =
  (* Same setup but flow 1's channel is bad half the time: windows where
     both stay backlogged show a service gap under plain WRR. *)
  let flows = Array.init 2 (fun id -> Core.Params.flow ~id ~weight:1. ()) in
  let sched = Core.Wps.instance (Core.Wps.create ~params:Core.Params.wrr flows) in
  let monitor =
    Core.Fairness.Monitor.create ~weights:[| 1.; 1. |] ~window:50 ~sched
  in
  let setups =
    Array.init 2 (fun i ->
        {
          Core.Simulator.flow = flows.(i);
          source = Wfs_traffic.Cbr.create ~interarrival:1. ();
          channel =
            (if i = 1 then
               Wfs_channel.Gilbert_elliott.create ~rng:(Rng.create 9) ~pg:0.05
                 ~pe:0.05 ()
             else Wfs_channel.Error_free.create ());
        })
  in
  let cfg =
    Core.Simulator.config ~predictor:Wfs_channel.Predictor.Perfect
      ~observer:(Core.Fairness.Monitor.observer monitor)
      ~horizon:5_000 setups
  in
  ignore (Core.Simulator.run cfg sched);
  check_bool "gap visible" true (Core.Fairness.Monitor.worst_gap monitor > 5.);
  check_bool "Jain below 1" true (Core.Fairness.Monitor.mean_jain monitor < 0.999)

(* --- ALOHA contention --- *)

let test_aloha_conservation () =
  let contenders = List.init 8 Fun.id in
  let out =
    Wfs_mac.Contention.contend_aloha ~rng:(Rng.create 10) ~minislots:4
      ~persistence:0.5 ~contenders
  in
  check_int "partition"
    (List.length contenders)
    (List.length out.Wfs_mac.Contention.winners
    + List.length out.Wfs_mac.Contention.collided
    + List.length out.Wfs_mac.Contention.deferred)

let test_aloha_statistics () =
  let rng = Rng.create 11 in
  let trials = 20_000 and m = 4 and k = 6 in
  let p = 0.5 in
  let wins = ref 0 in
  for _ = 1 to trials do
    let out =
      Wfs_mac.Contention.contend_aloha ~rng ~minislots:m ~persistence:p
        ~contenders:(List.init k Fun.id)
    in
    if List.mem 0 out.Wfs_mac.Contention.winners then incr wins
  done;
  let expected =
    Wfs_mac.Contention.aloha_success_probability ~minislots:m ~persistence:p
      ~contenders:k
  in
  check_bool "matches analytic" true
    (abs_float ((float_of_int !wins /. float_of_int trials) -. expected) < 0.01)

let test_aloha_beats_single_shot_when_crowded () =
  (* With many contenders, persistence < 1 wins more often per slot. *)
  let k = 12 and m = 4 in
  let single = Wfs_mac.Contention.success_probability ~minislots:m ~contenders:k in
  let aloha =
    Wfs_mac.Contention.aloha_success_probability ~minislots:m ~persistence:0.3
      ~contenders:k
  in
  check_bool "aloha better under load" true (aloha > single)

let test_mac_sim_with_aloha () =
  let up host = { Wfs_mac.Frame.host; direction = Wfs_mac.Frame.Uplink; index = 0 } in
  (* Ten sporadic uplink hosts: contention is the bottleneck.  Channels and
     sources are stateful, so each run builds fresh ones. *)
  let mk_flows () =
    Array.init 10 (fun i ->
        {
          Wfs_mac.Mac_sim.addr = up (i + 1);
          weight = 1.;
          source = Wfs_traffic.Poisson.create ~rng:(Rng.create (50 + i)) ~rate:0.02;
          channel = Wfs_channel.Error_free.create ();
          drop = Core.Params.No_drop;
        })
  in
  let run contention =
    let cfg =
      Wfs_mac.Mac_sim.config ~rng:(Rng.create 99) ~contention ~horizon:20_000
        (mk_flows ())
    in
    Wfs_mac.Mac_sim.run cfg
  in
  let single = run Wfs_mac.Mac_sim.Single_shot in
  let aloha = run (Wfs_mac.Mac_sim.Aloha 0.5) in
  check_bool "both deliver" true
    (Core.Metrics.delivered single.Wfs_mac.Mac_sim.metrics ~flow:0 > 0
    && Core.Metrics.delivered aloha.Wfs_mac.Mac_sim.metrics ~flow:0 > 0);
  check_bool "aloha has fewer collisions" true
    (aloha.Wfs_mac.Mac_sim.notification_collisions
    <= single.Wfs_mac.Mac_sim.notification_collisions)

(* --- CSDPS baseline --- *)

let mk_flows weights =
  Array.mapi (fun id w -> Core.Params.flow ~id ~weight:w ()) weights

let fill sched ~flow ~count =
  for seq = 0 to count - 1 do
    sched.Core.Wireless_sched.enqueue ~slot:0
      (Wfs_traffic.Packet.make ~flow ~seq ~arrival:0 ())
  done

let test_csdps_round_robin () =
  let c = Core.Csdps.create (mk_flows [| 1.; 1. |]) in
  let sched = Core.Csdps.instance c in
  fill sched ~flow:0 ~count:4;
  fill sched ~flow:1 ~count:4;
  let order =
    List.init 4 (fun slot ->
        let f = Option.get (sched.select ~slot ~predicted_good:(fun _ -> true)) in
        sched.complete ~flow:f;
        f)
  in
  Alcotest.(check (list int)) "alternates" [ 0; 1; 0; 1 ] order

let test_csdps_marks_on_failure () =
  let c = Core.Csdps.create ~backoff:5 (mk_flows [| 1.; 1. |]) in
  let sched = Core.Csdps.instance c in
  fill sched ~flow:0 ~count:4;
  fill sched ~flow:1 ~count:4;
  (* Slot 0: flow 0 selected, transmission fails -> marked for 5 slots. *)
  check_int "flow0 first" 0
    (Option.get (sched.select ~slot:0 ~predicted_good:(fun _ -> true)));
  sched.fail ~flow:0;
  check_bool "marked" true (Core.Csdps.is_marked c ~flow:0 ~now:3);
  (* Slots 1..5: only flow 1 is served. *)
  for slot = 1 to 4 do
    check_int "skips marked flow" 1
      (Option.get (sched.select ~slot ~predicted_good:(fun _ -> true)));
    sched.complete ~flow:1
  done;
  (* After the backoff expires flow 0 is probed again. *)
  check_bool "unmarked after backoff" false (Core.Csdps.is_marked c ~flow:0 ~now:6);
  check_int "flow0 retried" 0
    (Option.get (sched.select ~slot:6 ~predicted_good:(fun _ -> true)))

let test_csdps_idles_when_all_marked () =
  let c = Core.Csdps.create ~backoff:10 (mk_flows [| 1. |]) in
  let sched = Core.Csdps.instance c in
  fill sched ~flow:0 ~count:2;
  ignore (sched.select ~slot:0 ~predicted_good:(fun _ -> true));
  sched.fail ~flow:0;
  check_bool "idles during backoff" true
    (Option.is_none (sched.select ~slot:1 ~predicted_good:(fun _ -> true)))

let test_csdps_no_compensation_vs_wps () =
  (* The paper's Section-9 claim, measured: under identical channels, CSDPS
     gives the errored flow no compensation, so its normalised-service gap
     is larger than WPS's. *)
  let horizon = 20_000 in
  let run make_sched =
    let flows = mk_flows [| 1.; 1. |] in
    let sched = make_sched flows in
    let monitor =
      Core.Fairness.Monitor.create ~weights:[| 1.; 1. |] ~window:100 ~sched
    in
    let master = Rng.create 4242 in
    let setups =
      Array.init 2 (fun i ->
          {
            Core.Simulator.flow = flows.(i);
            source = Wfs_traffic.Cbr.create ~interarrival:1. ();
            channel =
              (if i = 1 then
                 Wfs_channel.Gilbert_elliott.of_burstiness
                   ~rng:(Rng.split master) ~good_prob:0.7 ~sum:0.1 ()
               else Wfs_channel.Error_free.create ());
          })
    in
    let cfg =
      Core.Simulator.config ~predictor:Wfs_channel.Predictor.One_step
        ~observer:(Core.Fairness.Monitor.observer monitor)
        ~horizon setups
    in
    let m = Core.Simulator.run cfg sched in
    (Core.Fairness.Monitor.mean_jain monitor, Core.Metrics.delivered m ~flow:1)
  in
  let jain_csdps, delivered_csdps =
    run (fun flows -> Core.Csdps.instance (Core.Csdps.create flows))
  in
  let jain_wps, delivered_wps =
    run (fun flows ->
        Core.Wps.instance (Core.Wps.create ~params:(Core.Params.swapa ()) flows))
  in
  check_bool "both deliver substantially" true
    (delivered_csdps > 1_000 && delivered_wps > 1_000);
  check_bool "WPS is fairer than CSDPS" true (jain_wps > jain_csdps)

(* --- CIF-Q extension --- *)

let run_cifq ?alpha ~weights ~slots ~pred () =
  let flows = mk_flows weights in
  let c = Core.Cifq.create ?alpha flows in
  let sched = Core.Cifq.instance c in
  Array.iteri (fun f _ -> fill sched ~flow:f ~count:(2 * slots)) weights;
  let served = Array.make (Array.length weights) 0 in
  for slot = 0 to slots - 1 do
    match sched.select ~slot ~predicted_good:(pred slot) with
    | Some f ->
        served.(f) <- served.(f) + 1;
        sched.complete ~flow:f
    | None -> ()
  done;
  (c, served)

let test_cifq_error_free_fair_shares () =
  let _, served =
    run_cifq ~weights:[| 1.; 3. |] ~slots:400 ~pred:(fun _ _ -> true) ()
  in
  check_int "1:3 shares, flow0" 100 served.(0);
  check_int "1:3 shares, flow1" 300 served.(1)

let test_cifq_lag_conserved_when_all_good () =
  let c, _ =
    run_cifq ~weights:[| 1.; 1.; 2. |] ~slots:300 ~pred:(fun _ _ -> true) ()
  in
  let total = Core.Cifq.lag c ~flow:0 + Core.Cifq.lag c ~flow:1 + Core.Cifq.lag c ~flow:2 in
  check_int "sum of lags is zero" 0 total;
  (* and with everything good no flow drifts more than a packet *)
  for f = 0 to 2 do
    check_bool "lag bounded" true (abs (Core.Cifq.lag c ~flow:f) <= 1)
  done

let test_cifq_compensates_errored_flow () =
  (* flow1 blocked for 100 slots, then recovers: it is lagging and must
     receive extra service afterwards.  With alpha = 0.5, half of flow0's
     contested slots go to the lagger, so a 50-packet lag clears within
     ~200 slots. *)
  let pred slot f = if f = 1 then slot >= 100 else true in
  let c, served =
    run_cifq ~alpha:0.5 ~weights:[| 1.; 1. |] ~slots:500
      ~pred:(fun slot f -> pred slot f)
      ()
  in
  check_bool "flow1 caught up" true (abs (Core.Cifq.lag c ~flow:1) <= 2);
  (* Over the whole run the shares must be near-equal again: flow1 got its
     lost slots back. *)
  check_bool "long-term fairness" true (abs (served.(0) - served.(1)) <= 10)

let test_cifq_graceful_degradation () =
  (* During flow1's catch-up phase, the leading flow0 retains at least an
     alpha fraction of its reference share (alpha=0.8 -> >= 0.4 of slots),
     whereas alpha=0 surrenders nearly everything. *)
  let measure alpha =
    let flows = mk_flows [| 1.; 1. |] in
    let c = Core.Cifq.create ~alpha flows in
    let sched = Core.Cifq.instance c in
    fill sched ~flow:0 ~count:1000;
    fill sched ~flow:1 ~count:1000;
    (* Phase 1: flow1 blocked for 100 slots. *)
    for slot = 0 to 99 do
      (match sched.select ~slot ~predicted_good:(fun f -> f = 0) with
      | Some f -> sched.complete ~flow:f
      | None -> ())
    done;
    (* Phase 2: both good for 100 slots; count flow0's service. *)
    let flow0 = ref 0 in
    for slot = 100 to 199 do
      match sched.select ~slot ~predicted_good:(fun _ -> true) with
      | Some 0 ->
          incr flow0;
          sched.complete ~flow:0
      | Some f -> sched.complete ~flow:f
      | None -> ()
    done;
    !flow0
  in
  let retained_high = measure 0.8 in
  let retained_zero = measure 0.0 in
  check_bool "alpha=0.8 retains >= 35 of 100" true (retained_high >= 35);
  check_bool "alpha=0 surrenders the channel" true (retained_zero <= 5);
  check_bool "monotone in alpha" true (retained_high > retained_zero)

let test_cifq_failed_transmission_refunds_lag () =
  let flows = mk_flows [| 1. |] in
  let c = Core.Cifq.create flows in
  let sched = Core.Cifq.instance c in
  fill sched ~flow:0 ~count:2;
  ignore (sched.select ~slot:0 ~predicted_good:(fun _ -> true));
  sched.fail ~flow:0;
  check_int "lag back to reference-owed state" 1 (Core.Cifq.lag c ~flow:0)

let test_cifq_in_simulator () =
  (* End-to-end sanity on the Example 1 workload. *)
  let setups = Core.Presets.example1 ~seed:5 () in
  let flows = Core.Presets.flows_of setups in
  let sched = Core.Cifq.instance (Core.Cifq.create flows) in
  let cfg =
    Core.Simulator.config ~predictor:Wfs_channel.Predictor.One_step
      ~horizon:30_000 setups
  in
  let m = Core.Simulator.run cfg sched in
  check_bool "throughput delivered" true
    (Core.Metrics.throughput m ~flow:1 ~slots:30_000 > 0.49);
  check_bool "errored flow served" true
    (Core.Metrics.throughput m ~flow:0 ~slots:30_000 > 0.18)

let test_csdps_weighted () =
  let c = Core.Csdps.create (mk_flows [| 2.; 1. |]) in
  let sched = Core.Csdps.instance c in
  fill sched ~flow:0 ~count:9;
  fill sched ~flow:1 ~count:9;
  let served = Array.make 2 0 in
  for slot = 0 to 5 do
    match sched.select ~slot ~predicted_good:(fun _ -> true) with
    | Some f ->
        served.(f) <- served.(f) + 1;
        sched.complete ~flow:f
    | None -> ()
  done;
  check_int "flow0 double share" 4 served.(0);
  check_int "flow1 single share" 2 served.(1)

let test_wps_per_flow_limits () =
  (* Example 6's knob: per-flow (credit, debit) caps override the global
     parameters. *)
  let flows = mk_flows [| 1.; 1. |] in
  let wps =
    Core.Wps.create
      ~params:(Core.Params.swapa ~credit_limit:4 ~debit_limit:4 ())
      ~limits:[| (0, 4); (4, 0) |]
      flows
  in
  let sched = Core.Wps.instance wps in
  fill sched ~flow:0 ~count:20;
  fill sched ~flow:1 ~count:20;
  (* flow0 errored throughout: its credit cap of 0 forbids accumulation,
     and flow1's debit cap of 0 forbids debt. *)
  for slot = 0 to 9 do
    (match sched.select ~slot ~predicted_good:(fun f -> f = 1) with
    | Some f -> sched.complete ~flow:f
    | None -> ());
    sched.on_slot_end ~slot
  done;
  check_int "flow0 credit capped at 0" 0 (Core.Wps.credit wps ~flow:0);
  check_bool "flow1 never in debt" true (Core.Wps.credit wps ~flow:1 >= 0)

let test_metrics_slot_counters () =
  let m = Core.Metrics.create ~n_flows:1 () in
  Core.Metrics.on_idle_slot m;
  Core.Metrics.on_busy_slot m;
  Core.Metrics.on_busy_slot m;
  Core.Metrics.on_failed_attempt m ~flow:0;
  check_int "idle" 1 (Core.Metrics.idle_slots m);
  check_int "busy" 2 (Core.Metrics.busy_slots m);
  check_int "failed" 1 (Core.Metrics.failed_attempts m ~flow:0)

let test_heap_snapshot_helpers () =
  let h = Wfs_util.Heap.create ~leq:(fun (a : int) b -> a <= b) () in
  List.iter (Wfs_util.Heap.push h) [ 3; 1; 2 ];
  check_int "fold sums contents" 6 (Wfs_util.Heap.fold ( + ) 0 h);
  check_int "to_list has all" 3 (List.length (Wfs_util.Heap.to_list h));
  check_int "snapshot does not drain" 3 (Wfs_util.Heap.length h)

let test_table_truncates_long_rows () =
  let t = Wfs_util.Tablefmt.create ~title:"t" ~columns:[ "a" ] in
  Wfs_util.Tablefmt.add_row t [ "1"; "overflow"; "more" ];
  let rendered = Wfs_util.Tablefmt.render t in
  let contains needle hay =
    let n = String.length needle and m = String.length hay in
    let rec scan i =
      if i + n > m then false
      else if String.sub hay i n = needle then true
      else scan (i + 1)
    in
    scan 0
  in
  check_bool "kept cell present" true (contains "1" rendered);
  check_bool "overflow cells dropped" true (not (contains "overflow" rendered))

let test_iwfq_fluid_accessor_consistency () =
  (* The exposed fluid reference agrees with the lag computation. *)
  let flows = mk_flows [| 1.; 1. |] in
  let iwfq = Core.Iwfq.create flows in
  let sched = Core.Iwfq.instance iwfq in
  fill sched ~flow:0 ~count:4;
  for slot = 0 to 1 do
    ignore (sched.select ~slot ~predicted_good:(fun _ -> false));
    sched.on_slot_end ~slot
  done;
  let fluid_q = Core.Fluid_ref.queue (Core.Iwfq.fluid iwfq) ~flow:0 in
  Alcotest.(check (float 1e-9))
    "lag = real queue - fluid queue"
    (float_of_int (sched.queue_length 0) -. fluid_q)
    (Core.Iwfq.lag iwfq ~flow:0)

(* --- Randomized invariants over the core schedulers --- *)

let prop_conservation =
  QCheck.Test.make ~name:"WPS/IWFQ conserve packets under random scenarios"
    ~count:25
    QCheck.(pair (0 -- 1000000) (2 -- 4))
    (fun (seed, n_flows) ->
      let flows =
        Array.init n_flows (fun id -> Core.Params.flow ~id ~weight:1. ())
      in
      let master = Rng.create seed in
      let mk_setups () =
        Array.init n_flows (fun i ->
            {
              Core.Simulator.flow = flows.(i);
              source =
                Wfs_traffic.Poisson.create ~rng:(Rng.split master)
                  ~rate:(0.8 /. float_of_int n_flows);
              channel =
                Wfs_channel.Gilbert_elliott.create ~rng:(Rng.split master)
                  ~pg:0.1 ~pe:0.05 ();
            })
      in
      let conserves sched_of =
        let setups = mk_setups () in
        let sched = sched_of flows in
        let cfg = Core.Simulator.config ~horizon:3_000 setups in
        let m = Core.Simulator.run cfg sched in
        let ok = ref true in
        for i = 0 to n_flows - 1 do
          let arr = Core.Metrics.arrivals m ~flow:i in
          let settled =
            Core.Metrics.delivered m ~flow:i
            + Core.Metrics.dropped m ~flow:i
            + Core.Metrics.backlog_remaining m ~flow:i
          in
          if arr <> settled then ok := false;
          if Core.Metrics.backlog_remaining m ~flow:i < 0 then ok := false
        done;
        !ok
      in
      conserves (fun flows ->
          Core.Wps.instance (Core.Wps.create ~params:(Core.Params.swapa ()) flows))
      && conserves (fun flows -> Core.Iwfq.instance (Core.Iwfq.create flows))
      && conserves (fun flows -> Core.Cifq.instance (Core.Cifq.create flows))
      && conserves (fun flows -> Core.Csdps.instance (Core.Csdps.create flows)))

let prop_wps_credit_bounds =
  QCheck.Test.make ~name:"WPS credits stay within [-D, C] at every slot"
    ~count:25
    QCheck.(pair (0 -- 1000000) (pair (0 -- 5) (0 -- 5)))
    (fun (seed, (climit, dlimit)) ->
      let n = 3 in
      let flows = Array.init n (fun id -> Core.Params.flow ~id ~weight:1. ()) in
      let wps =
        Core.Wps.create
          ~params:
            (Core.Params.swapa ~credit_limit:climit ~debit_limit:dlimit ())
          flows
      in
      let sched = Core.Wps.instance wps in
      let master = Rng.create seed in
      let sources =
        Array.init n (fun _ ->
            Wfs_traffic.Poisson.create ~rng:(Rng.split master) ~rate:0.3)
      in
      let channels =
        Array.init n (fun _ ->
            Wfs_channel.Gilbert_elliott.create ~rng:(Rng.split master) ~pg:0.1
              ~pe:0.1 ())
      in
      let ok = ref true in
      let seq = ref 0 in
      for slot = 0 to 2_000 - 1 do
        Array.iteri
          (fun i src ->
            for _ = 1 to Wfs_traffic.Arrival.arrivals src ~slot do
              sched.enqueue ~slot
                (Wfs_traffic.Packet.make ~flow:i ~seq:!seq ~arrival:slot ());
              incr seq
            done)
          sources;
        let states = Array.map (fun ch -> Channel.advance ch ~slot) channels in
        let predicted_good i = Channel.state_is_good states.(i) in
        (match sched.select ~slot ~predicted_good with
        | Some f ->
            if Channel.state_is_good states.(f) then sched.complete ~flow:f
            else sched.fail ~flow:f
        | None -> ());
        sched.on_slot_end ~slot;
        for i = 0 to n - 1 do
          let c = Core.Wps.credit wps ~flow:i in
          if c > climit || c < -dlimit then ok := false
        done
      done;
      !ok)

let prop_work_conserving_when_all_good =
  QCheck.Test.make
    ~name:"WPS with good channels never idles while backlogged" ~count:25
    QCheck.(0 -- 1000000)
    (fun seed ->
      let n = 3 in
      let flows = Array.init n (fun id -> Core.Params.flow ~id ~weight:1. ()) in
      let wps = Core.Wps.create ~params:(Core.Params.swapa ()) flows in
      let sched = Core.Wps.instance wps in
      let master = Rng.create seed in
      let sources =
        Array.init n (fun _ ->
            Wfs_traffic.Poisson.create ~rng:(Rng.split master) ~rate:0.5)
      in
      let ok = ref true in
      let seq = ref 0 in
      for slot = 0 to 1_000 - 1 do
        Array.iteri
          (fun i src ->
            for _ = 1 to Wfs_traffic.Arrival.arrivals src ~slot do
              sched.enqueue ~slot
                (Wfs_traffic.Packet.make ~flow:i ~seq:!seq ~arrival:slot ());
              incr seq
            done)
          sources;
        let backlogged =
          Array.exists (fun i -> sched.queue_length i > 0) (Array.init n Fun.id)
        in
        (match sched.select ~slot ~predicted_good:(fun _ -> true) with
        | Some f -> sched.complete ~flow:f
        | None -> if backlogged then ok := false);
        sched.on_slot_end ~slot
      done;
      !ok)

let prop_per_flow_fifo =
  (* Neither scheduler may reorder packets within a flow: delivered
     sequence numbers are strictly increasing per flow. *)
  QCheck.Test.make ~name:"per-flow FIFO delivery order" ~count:20
    QCheck.(0 -- 1000000)
    (fun seed ->
      let n = 3 in
      let flows = Array.init n (fun id -> Core.Params.flow ~id ~weight:1. ()) in
      let master = Rng.create seed in
      let fifo_ok make_sched =
        let sched = make_sched flows in
        let trace = Wfs_sim.Tracelog.create () in
        let setups =
          Array.init n (fun i ->
              {
                Core.Simulator.flow = flows.(i);
                source =
                  Wfs_traffic.Poisson.create ~rng:(Rng.split master) ~rate:0.25;
                channel =
                  Wfs_channel.Gilbert_elliott.create ~rng:(Rng.split master)
                    ~pg:0.1 ~pe:0.1 ();
              })
        in
        let cfg = Core.Simulator.config ~trace ~horizon:2_000 setups in
        ignore (Core.Simulator.run cfg sched);
        let last_seq = Array.make n (-1) in
        List.for_all
          (fun { Wfs_sim.Tracelog.event; _ } ->
            match event with
            | Wfs_sim.Tracelog.Transmit_ok { flow; seq; _ } ->
                let ok = seq > last_seq.(flow) in
                last_seq.(flow) <- seq;
                ok
            | _ -> true)
          (Wfs_sim.Tracelog.events trace)
      in
      fifo_ok (fun flows ->
          Core.Wps.instance (Core.Wps.create ~params:(Core.Params.swapa ()) flows))
      && fifo_ok (fun flows -> Core.Iwfq.instance (Core.Iwfq.create flows))
      && fifo_ok (fun flows -> Core.Cifq.instance (Core.Cifq.create flows))
      && fifo_ok (fun flows -> Core.Csdps.instance (Core.Csdps.create flows)))

let test_wps_frame_length_matches_weights () =
  (* At a frame boundary, the pending allocation equals the sum of the
     effective weights of the backlogged flows. *)
  let wps = Core.Wps.create ~params:(Core.Params.swapa ()) (mk_flows [| 2.; 3. |]) in
  let sched = Core.Wps.instance wps in
  fill sched ~flow:0 ~count:20;
  fill sched ~flow:1 ~count:20;
  ignore (sched.select ~slot:0 ~predicted_good:(fun _ -> true));
  (* One slot consumed; 2+3-1 remain. *)
  check_int "frame length" 4 (Array.length (Core.Wps.frame_snapshot wps));
  check_int "eff weight flow0" 2 (Core.Wps.effective_weight wps ~flow:0);
  check_int "eff weight flow1" 3 (Core.Wps.effective_weight wps ~flow:1)

let suite =
  [
    ("markov validate", `Quick, test_markov_validate);
    ("markov stationary", `Quick, test_markov_stationary);
    ("markov empirical", `Quick, test_markov_matches_empirical);
    ("markov GE equivalence", `Quick, test_markov_ge_equivalence);
    ("pareto support", `Quick, test_pareto_draw_support);
    ("pareto mean", `Quick, test_pareto_mean);
    ("pareto on-off rate", `Quick, test_pareto_onoff_rate);
    ("pareto heavy tail", `Quick, test_pareto_onoff_heavy_tail);
    ("wf2q+ weighted shares", `Quick, test_wf2q_plus_weighted_shares);
    ("wf2q+ matches wf2q backlogged", `Quick, test_wf2q_plus_matches_wf2q_order_when_backlogged);
    ("wf2q+ virtual time monotone", `Quick, test_wf2q_plus_virtual_time_monotone);
    ("jain extremes", `Quick, test_jain_extremes);
    ("max normalized gap", `Quick, test_max_normalized_gap);
    ("fairness monitor fair case", `Quick, test_fairness_monitor_on_fair_schedule);
    ("fairness monitor unfair case", `Quick, test_fairness_monitor_detects_unfairness);
    ("aloha conservation", `Quick, test_aloha_conservation);
    ("aloha statistics", `Quick, test_aloha_statistics);
    ("aloha beats single-shot", `Quick, test_aloha_beats_single_shot_when_crowded);
    ("mac sim with aloha", `Quick, test_mac_sim_with_aloha);
    ("csdps round robin", `Quick, test_csdps_round_robin);
    ("csdps marks on failure", `Quick, test_csdps_marks_on_failure);
    ("csdps idles when marked", `Quick, test_csdps_idles_when_all_marked);
    ("csdps unfair vs wps", `Quick, test_csdps_no_compensation_vs_wps);
    ("cifq fair shares", `Quick, test_cifq_error_free_fair_shares);
    ("cifq lag conservation", `Quick, test_cifq_lag_conserved_when_all_good);
    ("cifq compensates errored flow", `Quick, test_cifq_compensates_errored_flow);
    ("cifq graceful degradation", `Quick, test_cifq_graceful_degradation);
    ("cifq fail refunds lag", `Quick, test_cifq_failed_transmission_refunds_lag);
    ("cifq in simulator", `Quick, test_cifq_in_simulator);
    ("wps frame length = eff weights", `Quick, test_wps_frame_length_matches_weights);
    ("csdps weighted", `Quick, test_csdps_weighted);
    ("wps per-flow limits", `Quick, test_wps_per_flow_limits);
    ("metrics slot counters", `Quick, test_metrics_slot_counters);
    ("heap snapshots", `Quick, test_heap_snapshot_helpers);
    ("table truncates long rows", `Quick, test_table_truncates_long_rows);
    ("iwfq fluid accessor", `Quick, test_iwfq_fluid_accessor_consistency);
    QCheck_alcotest.to_alcotest prop_per_flow_fifo;
    QCheck_alcotest.to_alcotest prop_conservation;
    QCheck_alcotest.to_alcotest prop_wps_credit_bounds;
    QCheck_alcotest.to_alcotest prop_work_conserving_when_all_good;
  ]
