(* Tests for the simulation engine: event queue, clock, slotted driver,
   trace log. *)

module Eq = Wfs_sim.Event_queue
module Clock = Wfs_sim.Clock
module Slotted = Wfs_sim.Slotted
module Tracelog = Wfs_sim.Tracelog

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_event_queue_order () =
  let q = Eq.create () in
  Eq.schedule q ~at:3. "c";
  Eq.schedule q ~at:1. "a";
  Eq.schedule q ~at:2. "b";
  let out = List.init 3 (fun _ -> snd (Option.get (Eq.pop q))) in
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ] out

let test_event_queue_same_time_fifo () =
  let q = Eq.create () in
  Eq.schedule q ~at:1. "first";
  Eq.schedule q ~at:1. "second";
  Alcotest.(check string) "fifo" "first" (snd (Option.get (Eq.pop q)));
  Alcotest.(check string) "fifo" "second" (snd (Option.get (Eq.pop q)))

let test_event_queue_nan () =
  let q = Eq.create () in
  Alcotest.check_raises "NaN rejected"
    (Invalid_argument "Event_queue.schedule: NaN time") (fun () ->
      Eq.schedule q ~at:nan "x")

let test_event_queue_next_time () =
  let q = Eq.create () in
  Alcotest.(check (option (float 0.))) "empty" None (Eq.next_time q);
  Eq.schedule q ~at:5. ();
  Alcotest.(check (option (float 0.))) "peek" (Some 5.) (Eq.next_time q);
  check_int "length" 1 (Eq.length q)

let test_clock_advance () =
  let c = Clock.create () in
  Alcotest.(check (float 0.)) "starts at 0" 0. (Clock.now c);
  Clock.advance_to c 2.5;
  Alcotest.(check (float 0.)) "advanced" 2.5 (Clock.now c);
  Alcotest.check_raises "no going back"
    (Invalid_argument "Clock.advance_to: 1 precedes current time 2.5")
    (fun () -> Clock.advance_to c 1.)

let test_slotted_run () =
  let s = Slotted.create () in
  let seen = ref [] in
  Slotted.run s ~slots:3 (fun i -> seen := i :: !seen);
  Alcotest.(check (list int)) "slots in order" [ 2; 1; 0 ] !seen;
  (* A second run continues numbering. *)
  Slotted.run s ~slots:2 (fun i -> seen := i :: !seen);
  Alcotest.(check (list int)) "continues" [ 4; 3; 2; 1; 0 ] !seen

let test_slotted_run_until () =
  let s = Slotted.create () in
  let n = Slotted.run_until s (fun i -> i < 4) ~max_slots:100 in
  check_int "stopped by predicate" 5 n;
  Slotted.reset s;
  let n = Slotted.run_until s (fun _ -> true) ~max_slots:7 in
  check_int "stopped by cap" 7 n

let test_tracelog_basic () =
  let t = Tracelog.create () in
  Tracelog.record t ~slot:0 (Tracelog.Arrival { flow = 1; seq = 0 });
  Tracelog.record t ~slot:1 Tracelog.Slot_idle;
  Tracelog.record t ~slot:2 (Tracelog.Transmit_ok { flow = 1; seq = 0; delay = 2 });
  check_int "3 events" 3 (List.length (Tracelog.events t));
  check_int "1 idle" 1
    (Tracelog.count t (fun e -> e.Tracelog.event = Tracelog.Slot_idle));
  let arrivals =
    Tracelog.filter t (fun e ->
        match e.Tracelog.event with Tracelog.Arrival _ -> true | _ -> false)
  in
  check_int "arrival at slot 0" 0 (List.hd arrivals).Tracelog.slot

let test_tracelog_disabled () =
  let t = Tracelog.create ~enabled:false () in
  Tracelog.record t ~slot:0 Tracelog.Slot_idle;
  check_int "records nothing" 0 (List.length (Tracelog.events t));
  check_bool "reports disabled" false (Tracelog.enabled t)

let test_tracelog_clear () =
  let t = Tracelog.create () in
  Tracelog.record t ~slot:0 Tracelog.Slot_idle;
  Tracelog.clear t;
  check_int "cleared" 0 (List.length (Tracelog.events t))

let test_tracelog_pp () =
  let s = Format.asprintf "%a" Tracelog.pp_event (Tracelog.Swap { from_flow = 1; to_flow = 2 }) in
  Alcotest.(check string) "pp swap" "swap f1->f2" s

let suite =
  [
    ("event queue order", `Quick, test_event_queue_order);
    ("event queue same-time FIFO", `Quick, test_event_queue_same_time_fifo);
    ("event queue rejects NaN", `Quick, test_event_queue_nan);
    ("event queue next_time", `Quick, test_event_queue_next_time);
    ("clock advance", `Quick, test_clock_advance);
    ("slotted run", `Quick, test_slotted_run);
    ("slotted run_until", `Quick, test_slotted_run_until);
    ("tracelog basic", `Quick, test_tracelog_basic);
    ("tracelog disabled", `Quick, test_tracelog_disabled);
    ("tracelog clear", `Quick, test_tracelog_clear);
    ("tracelog pp", `Quick, test_tracelog_pp);
  ]
