(* Tests for channel models and predictors: steady state, burstiness,
   autocovariance, prediction accuracy regimes. *)

module Rng = Wfs_util.Rng
module Channel = Wfs_channel.Channel
module Ge = Wfs_channel.Gilbert_elliott
module Predictor = Wfs_channel.Predictor

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let record ch ~slots =
  Array.init slots (fun slot -> Channel.advance ch ~slot)

let fraction_good states =
  let good = Array.fold_left (fun acc s -> if Channel.state_is_good s then acc + 1 else acc) 0 states in
  float_of_int good /. float_of_int (Array.length states)

(* --- Channel wrapper --- *)

let test_channel_advance_order () =
  let ch = Wfs_channel.Error_free.create () in
  ignore (Channel.advance ch ~slot:0);
  Alcotest.check_raises "same slot rejected"
    (Invalid_argument "Channel.advance: slot 0 not after 0") (fun () ->
      ignore (Channel.advance ch ~slot:0))

let test_channel_previous_state () =
  let ch = Wfs_channel.Trace_ch.of_bad_slots [ 1 ] in
  ignore (Channel.advance ch ~slot:0);
  Alcotest.(check bool) "prev before slot0 is initial good" true
    (Channel.state_is_good (Channel.previous_state ch));
  ignore (Channel.advance ch ~slot:1);
  check_bool "prev of slot1 = slot0 state" true
    (Channel.state_is_good (Channel.previous_state ch));
  check_bool "current is bad" false (Channel.state_is_good (Channel.state ch))

let test_channel_state_before_advance () =
  let ch = Wfs_channel.Error_free.create () in
  Alcotest.check_raises "state before advance"
    (Invalid_argument "Channel.state: not advanced yet") (fun () ->
      ignore (Channel.state ch))

(* --- Gilbert-Elliott --- *)

let test_ge_steady_state () =
  let ch = Ge.create ~rng:(Rng.create 1) ~pg:0.07 ~pe:0.03 () in
  let states = record ch ~slots:200_000 in
  check_bool "PG near 0.7" true (abs_float (fraction_good states -. 0.7) < 0.01)

let test_ge_burst_lengths () =
  (* Mean bad-burst length is 1/pg. *)
  let ch = Ge.create ~rng:(Rng.create 2) ~pg:0.1 ~pe:0.05 () in
  let states = record ch ~slots:300_000 in
  let bursts = ref [] and current = ref 0 in
  Array.iter
    (fun s ->
      if not (Channel.state_is_good s) then incr current
      else if !current > 0 then begin
        bursts := !current :: !bursts;
        current := 0
      end)
    states;
  let mean =
    float_of_int (List.fold_left ( + ) 0 !bursts)
    /. float_of_int (List.length !bursts)
  in
  check_bool "mean bad burst near 10" true (abs_float (mean -. 10.) < 0.5)

let test_ge_autocovariance_sign () =
  (* C(1) = PG*PE*(1-(pg+pe)): positive for sum<1, ~zero for sum=1. *)
  let autocov states =
    let n = Array.length states in
    let x i = if Channel.state_is_good states.(i) then 1. else 0. in
    let mean = fraction_good states in
    let s = ref 0. in
    for i = 0 to n - 2 do
      s := !s +. ((x i -. mean) *. (x (i + 1) -. mean))
    done;
    !s /. float_of_int (n - 1)
  in
  let bursty =
    record (Ge.of_burstiness ~rng:(Rng.create 3) ~good_prob:0.7 ~sum:0.1 ()) ~slots:100_000
  in
  let memoryless =
    record (Ge.of_burstiness ~rng:(Rng.create 4) ~good_prob:0.7 ~sum:1.0 ()) ~slots:100_000
  in
  check_bool "bursty C(1) > 0.15" true (autocov bursty > 0.15);
  check_bool "memoryless C(1) ~ 0" true (abs_float (autocov memoryless) < 0.01)

let test_ge_of_burstiness_params () =
  Alcotest.(check (float 1e-9)) "steady state" 0.7 (Ge.steady_state_good ~pg:0.07 ~pe:0.03);
  Alcotest.check_raises "bad good_prob"
    (Invalid_argument "Gilbert_elliott.of_burstiness: good_prob must be in (0,1)")
    (fun () ->
      ignore (Ge.of_burstiness ~rng:(Rng.create 1) ~good_prob:1.0 ~sum:0.1 ()))

let test_ge_start_state () =
  let ch = Ge.create ~rng:(Rng.create 5) ~pg:0.5 ~pe:0.5 ~start_good:false () in
  (* The initial state seeds previous_state for one-step prediction. *)
  ignore (Channel.advance ch ~slot:0);
  check_bool "initial seed is bad" false
    (Channel.state_is_good (Channel.previous_state ch))

(* --- Bernoulli --- *)

let test_bernoulli_rate () =
  let ch = Wfs_channel.Bernoulli_ch.create ~rng:(Rng.create 6) ~good_prob:0.3 in
  let states = record ch ~slots:100_000 in
  check_bool "fraction near 0.3" true (abs_float (fraction_good states -. 0.3) < 0.01)

(* --- Periodic / burst --- *)

let test_periodic_pattern () =
  let ch = Wfs_channel.Periodic_ch.bad_every ~period:3 ~offset:1 in
  let states = record ch ~slots:9 in
  let bads =
    List.filter (fun i -> not (Channel.state_is_good states.(i))) (List.init 9 Fun.id)
  in
  Alcotest.(check (list int)) "bad at 1,4,7" [ 1; 4; 7 ] bads

let test_bad_burst () =
  let ch = Wfs_channel.Periodic_ch.bad_burst ~start:2 ~length:3 in
  let states = record ch ~slots:8 in
  let bads =
    List.filter (fun i -> not (Channel.state_is_good states.(i))) (List.init 8 Fun.id)
  in
  Alcotest.(check (list int)) "burst 2..4" [ 2; 3; 4 ] bads

(* --- Trace channel --- *)

let test_trace_channel_replay () =
  let src = Ge.create ~rng:(Rng.create 7) ~pg:0.1 ~pe:0.1 () in
  let states = Wfs_channel.Trace_ch.record src ~slots:500 in
  let replayed =
    Wfs_channel.Trace_ch.create
      (Array.to_list (Array.mapi (fun i s -> (i, s)) states))
  in
  let states' = record replayed ~slots:500 in
  check_bool "identical replay" true (states = states')

(* --- Predictors --- *)

let one_step_accuracy ~sum =
  let rng = Rng.create 8 in
  let ch = Ge.of_burstiness ~rng ~good_prob:0.7 ~sum () in
  let p = Predictor.create Predictor.One_step in
  let hits = ref 0 and n = 100_000 in
  for slot = 0 to n - 1 do
    let actual = Channel.advance ch ~slot in
    let predicted = Predictor.predict p ch ~slot in
    if predicted = actual then incr hits
  done;
  float_of_int !hits /. float_of_int n

let test_one_step_accuracy_regimes () =
  (* Bursty channels are predictable; memoryless ones are not (Table 3's
     point). *)
  let bursty = one_step_accuracy ~sum:0.1 in
  let memoryless = one_step_accuracy ~sum:1.0 in
  check_bool "bursty accuracy > 0.9" true (bursty > 0.9);
  (* With sum=1 states are iid: accuracy = PG^2+PE^2 = 0.58. *)
  check_bool "memoryless accuracy near 0.58" true (abs_float (memoryless -. 0.58) < 0.02)

let test_perfect_predictor () =
  let ch = Ge.create ~rng:(Rng.create 9) ~pg:0.3 ~pe:0.3 () in
  let p = Predictor.create Predictor.Perfect in
  for slot = 0 to 999 do
    let actual = Channel.advance ch ~slot in
    Alcotest.(check bool) "oracle" true (Predictor.predict p ch ~slot = actual)
  done

let test_blind_predictor () =
  let ch = Wfs_channel.Trace_ch.of_bad_slots [ 0; 1; 2 ] in
  let p = Predictor.create Predictor.Blind in
  for slot = 0 to 2 do
    ignore (Channel.advance ch ~slot);
    check_bool "always good" true
      (Channel.state_is_good (Predictor.predict p ch ~slot))
  done

let test_snoop_predictor () =
  (* Period-3 snooping holds its observation between snoops. *)
  let ch = Wfs_channel.Trace_ch.of_bad_slots [ 0; 1; 2; 3 ] in
  let p = Predictor.create (Predictor.Periodic_snoop 3) in
  let predictions =
    List.init 6 (fun slot ->
        ignore (Channel.advance ch ~slot);
        Channel.state_is_good (Predictor.predict p ch ~slot))
  in
  (* slot0: snoop sees initial Good seed; holds until slot3 snoop sees
     slot2=bad; slot4,5 hold bad observation (slot3 was bad). *)
  Alcotest.(check (list bool)) "snoop holds between observations"
    [ true; true; true; false; false; false ] predictions

let test_snoop_invalid () =
  Alcotest.check_raises "period 0"
    (Invalid_argument "Predictor.create: snoop period must be > 0") (fun () ->
      ignore (Predictor.create (Predictor.Periodic_snoop 0)))

let test_predictor_labels () =
  Alcotest.(check string) "I" "I" (Predictor.label Predictor.Perfect);
  Alcotest.(check string) "P" "P" (Predictor.label Predictor.One_step);
  Alcotest.(check string) "snoop" "snoop5" (Predictor.label (Predictor.Periodic_snoop 5))

let suite =
  [
    ("advance order enforced", `Quick, test_channel_advance_order);
    ("previous state tracking", `Quick, test_channel_previous_state);
    ("state before advance", `Quick, test_channel_state_before_advance);
    ("GE steady state", `Quick, test_ge_steady_state);
    ("GE burst lengths", `Quick, test_ge_burst_lengths);
    ("GE autocovariance", `Quick, test_ge_autocovariance_sign);
    ("GE burstiness params", `Quick, test_ge_of_burstiness_params);
    ("GE start state", `Quick, test_ge_start_state);
    ("Bernoulli rate", `Quick, test_bernoulli_rate);
    ("periodic pattern", `Quick, test_periodic_pattern);
    ("bad burst", `Quick, test_bad_burst);
    ("trace replay", `Quick, test_trace_channel_replay);
    ("one-step accuracy regimes", `Quick, test_one_step_accuracy_regimes);
    ("perfect predictor", `Quick, test_perfect_predictor);
    ("blind predictor", `Quick, test_blind_predictor);
    ("snoop predictor", `Quick, test_snoop_predictor);
    ("snoop invalid", `Quick, test_snoop_invalid);
    ("predictor labels", `Quick, test_predictor_labels);
  ]
