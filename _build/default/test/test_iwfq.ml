(* Tests for the core wireless fair queueing machinery: the slotted fluid
   reference, slot queues (tag side of Section 4.2), spreading, credits, and
   the IWFQ algorithm itself. *)

module Core = Wfs_core
module Fluid = Core.Fluid_ref
module Sq = Core.Slot_queue
module Packet = Wfs_traffic.Packet

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

(* --- Fluid reference --- *)

let test_fluid_equal_split () =
  let f = Fluid.create ~weights:[| 1.; 1. |] () in
  Fluid.add_arrivals f ~flow:0 ~count:4;
  Fluid.add_arrivals f ~flow:1 ~count:4;
  Fluid.step f;
  check_float "half each" 0.5 (Fluid.service f ~flow:0);
  check_float "half each" 0.5 (Fluid.service f ~flow:1);
  check_float "queue shrinks" 3.5 (Fluid.queue f ~flow:0)

let test_fluid_weighted_split () =
  let f = Fluid.create ~weights:[| 3.; 1. |] () in
  Fluid.add_arrivals f ~flow:0 ~count:10;
  Fluid.add_arrivals f ~flow:1 ~count:10;
  for _ = 1 to 4 do
    Fluid.step f
  done;
  check_float "3:1" 3. (Fluid.service f ~flow:0);
  check_float "3:1" 1. (Fluid.service f ~flow:1)

let test_fluid_drain_midslot () =
  (* Weights 2:1.  Slot 0 leaves flow 0 with a 1/3-packet backlog; during
     slot 1 it drains mid-slot and flow 1 absorbs the freed rate. *)
  let f = Fluid.create ~weights:[| 2.; 1. |] () in
  Fluid.add_arrivals f ~flow:0 ~count:1;
  Fluid.add_arrivals f ~flow:1 ~count:3;
  Fluid.step f;
  Alcotest.(check (float 1e-9)) "slot 0: 2/3 to flow0" (2. /. 3.)
    (Fluid.service f ~flow:0);
  Fluid.step f;
  check_float "flow0 drained" 0. (Fluid.queue f ~flow:0);
  check_float "flow0 total service" 1. (Fluid.service f ~flow:0);
  (* flow1: 1/3 (slot 0) + 1/6 (sharing) + 1/2 (alone) = 1. *)
  Alcotest.(check (float 1e-9)) "flow1 absorbed the freed rate" 1.
    (Fluid.service f ~flow:1)

let test_fluid_virtual_time () =
  let f = Fluid.create ~weights:[| 1.; 1. |] () in
  check_float "starts 0" 0. (Fluid.virtual_time f);
  Fluid.add_arrivals f ~flow:0 ~count:2;
  Fluid.step f;
  (* only flow0 backlogged: dv = C/r0 = 1 *)
  check_float "slope 1 alone" 1. (Fluid.virtual_time f);
  Fluid.add_arrivals f ~flow:1 ~count:2;
  Fluid.step f;
  check_float "slope 1/2 together" 1.5 (Fluid.virtual_time f)

let test_fluid_idle_constant_v () =
  let f = Fluid.create ~weights:[| 1. |] () in
  Fluid.add_arrivals f ~flow:0 ~count:1;
  Fluid.step f;
  let v = Fluid.virtual_time f in
  Fluid.step f;
  Fluid.step f;
  check_float "v frozen when idle" v (Fluid.virtual_time f);
  check_int "slots counted" 3 (Fluid.slot f)

let test_fluid_conservation () =
  (* Total service equals capacity whenever there is enough backlog. *)
  let f = Fluid.create ~weights:[| 2.; 1.; 0.5 |] () in
  Fluid.add_arrivals f ~flow:0 ~count:10;
  Fluid.add_arrivals f ~flow:1 ~count:10;
  Fluid.add_arrivals f ~flow:2 ~count:10;
  for _ = 1 to 10 do
    Fluid.step f
  done;
  let total =
    Fluid.service f ~flow:0 +. Fluid.service f ~flow:1 +. Fluid.service f ~flow:2
  in
  Alcotest.(check (float 1e-6)) "work conserving" 10. total

let prop_fluid_fairness =
  (* Equation (1): over any backlogged interval, normalised service is
     equal across continuously backlogged flows. *)
  QCheck.Test.make ~name:"fluid normalised service equal when backlogged"
    ~count:100
    QCheck.(pair (1 -- 5) (1 -- 5))
    (fun (w0, w1) ->
      let weights = [| float_of_int w0; float_of_int w1 |] in
      let f = Fluid.create ~weights () in
      Fluid.add_arrivals f ~flow:0 ~count:100;
      Fluid.add_arrivals f ~flow:1 ~count:100;
      for _ = 1 to 20 do
        Fluid.step f
      done;
      let s0 = Fluid.service f ~flow:0 /. weights.(0) in
      let s1 = Fluid.service f ~flow:1 /. weights.(1) in
      abs_float (s0 -. s1) < 1e-6)

let prop_fluid_matches_continuous_gps =
  (* Cross-validation of the two fluid implementations: for unit-size
     packets arriving at integer instants, the slotted water-filling
     reference must agree with the event-driven continuous GPS at every
     slot boundary. *)
  QCheck.Test.make ~name:"slotted fluid = continuous GPS at slot boundaries"
    ~count:50
    QCheck.(pair (0 -- 100000) (2 -- 4))
    (fun (seed, n) ->
      let rng = Wfs_util.Rng.create seed in
      let weights =
        Array.init n (fun _ -> 0.5 +. Wfs_util.Rng.float rng)
      in
      let fluid = Fluid.create ~weights () in
      let gps =
        Wfs_wireline.Gps.create ~capacity:1.
          (Wfs_wireline.Flow.of_weights weights)
      in
      let ok = ref true in
      for slot = 0 to 99 do
        for flow = 0 to n - 1 do
          if Wfs_util.Rng.bernoulli rng (0.8 /. float_of_int n) then begin
            Fluid.add_arrivals fluid ~flow ~count:1;
            ignore
              (Wfs_wireline.Gps.arrive gps ~time:(float_of_int slot) ~flow
                 ~size:1.)
          end
        done;
        Fluid.step fluid;
        Wfs_wireline.Gps.advance_to gps (float_of_int (slot + 1));
        for flow = 0 to n - 1 do
          let a = Fluid.service fluid ~flow in
          let b = Wfs_wireline.Gps.service gps ~flow in
          if abs_float (a -. b) > 1e-6 then ok := false
        done
      done;
      !ok)

(* --- Slot queue --- *)

let test_slot_queue_tags () =
  let q = Sq.create ~weight:0.5 in
  let s1 = Sq.add q ~v:0. in
  let s2 = Sq.add q ~v:0. in
  check_float "first start" 0. s1.Sq.start;
  check_float "first finish (1/r)" 2. s1.Sq.finish;
  check_float "chained" 2. s2.Sq.start;
  check_int "length" 2 (Sq.length q)

let test_slot_queue_tags_after_idle () =
  let q = Sq.create ~weight:1. in
  ignore (Sq.add q ~v:0.);
  ignore (Sq.pop_front q);
  let s = Sq.add q ~v:5. in
  check_float "restarts at v" 5. s.Sq.start

let test_slot_queue_pop_back () =
  let q = Sq.create ~weight:1. in
  let s1 = Sq.add q ~v:0. in
  let s2 = Sq.add q ~v:0. in
  let popped = Option.get (Sq.pop_back q) in
  check_float "newest popped" s2.Sq.finish popped.Sq.finish;
  check_float "head intact" s1.Sq.finish (Option.get (Sq.head q)).Sq.finish

let test_slot_queue_lagging_count () =
  let q = Sq.create ~weight:1. in
  for _ = 1 to 5 do
    ignore (Sq.add q ~v:0.)
  done;
  (* finishes 1..5 *)
  check_int "lagging below v=3.5" 3 (Sq.lagging_count q ~v:3.5);
  check_int "none below v=0.5" 0 (Sq.lagging_count q ~v:0.5)

let test_slot_queue_trim_lagging () =
  let q = Sq.create ~weight:1. in
  for _ = 1 to 6 do
    ignore (Sq.add q ~v:0.)
  done;
  (* finishes 1..6; v=5.5 makes 5 lagging; cap 2 keeps finishes 1,2 and
     deletes 3,4,5; finish 6 (non-lagging) survives. *)
  let deleted = Sq.trim_lagging q ~v:5.5 ~max_lagging:2 in
  check_int "deleted 3" 3 deleted;
  check_int "remaining" 3 (Sq.length q);
  let finishes = List.map (fun s -> s.Sq.finish) (Sq.to_list q) in
  Alcotest.(check (list (float 1e-9))) "kept lowest + tail" [ 1.; 2.; 6. ] finishes

let test_slot_queue_trim_noop () =
  let q = Sq.create ~weight:1. in
  ignore (Sq.add q ~v:0.);
  check_int "no deletion needed" 0 (Sq.trim_lagging q ~v:10. ~max_lagging:5)

let test_slot_queue_clamp_lead () =
  let q = Sq.create ~weight:1. in
  ignore (Sq.add q ~v:10.);
  (* head start 10; with v=0 and max_lead 4, limit = 4 -> clamp *)
  check_bool "clamped" true (Sq.clamp_lead q ~v:0. ~max_lead:4. ~weight:1.);
  let head = Option.get (Sq.head q) in
  check_float "start clamped" 4. head.Sq.start;
  check_float "finish follows" 5. head.Sq.finish;
  check_bool "no further clamp" false (Sq.clamp_lead q ~v:0. ~max_lead:4. ~weight:1.)

let test_slot_queue_clamp_updates_chain () =
  let q = Sq.create ~weight:1. in
  ignore (Sq.add q ~v:10.);
  ignore (Sq.clamp_lead q ~v:0. ~max_lead:2. ~weight:1.);
  (* next arrival chains from the clamped finish (3), not the old 11 *)
  let s = Sq.add q ~v:0. in
  check_float "chains from clamped finish" 3. s.Sq.start

(* --- Spreading --- *)

let test_spreading_counts () =
  let frame = Core.Spreading.frame ~weights:[| 2; 1; 3 |] in
  check_int "length" 6 (Array.length frame);
  check_bool "valid spread" true
    (Core.Spreading.is_spread_of ~weights:[| 2; 1; 3 |] frame)

let test_spreading_interleaves () =
  (* Equal weights must alternate, not cluster. *)
  let frame = Core.Spreading.frame ~weights:[| 2; 2 |] in
  Alcotest.(check (array int)) "alternating" [| 0; 1; 0; 1 |] frame

let test_spreading_wf2q_order () =
  (* weights 3,1: WF2Q spreads the singleton late: 0,0,1?,... finish tags:
     flow0: 1/3,2/3,1; flow1: 1. At pos0 eligible both (start 0): f0
     (1/3). pos1: v=1/4, f0#1 start 1/3 not eligible, f1 start 0 eligible
     finish 1 -> f1? No: eligibility start <= v: f0#1 start=1/3 > 0.25 so
     only f1 eligible. *)
  let frame = Core.Spreading.frame ~weights:[| 3; 1 |] in
  Alcotest.(check (array int)) "wf2q eligibility order" [| 0; 1; 0; 0 |] frame

let test_spreading_zero_and_negative () =
  let frame = Core.Spreading.frame ~weights:[| 2; 0; -3 |] in
  Alcotest.(check (array int)) "only positive weights" [| 0; 0 |] frame;
  check_int "all zero" 0 (Array.length (Core.Spreading.frame ~weights:[| 0; 0 |]))

let prop_spreading_is_permutation =
  QCheck.Test.make ~name:"spreading emits exactly w_i slots per flow" ~count:200
    QCheck.(list_of_size Gen.(1 -- 6) (0 -- 5))
    (fun ws ->
      let weights = Array.of_list ws in
      Core.Spreading.is_spread_of ~weights (Core.Spreading.frame ~weights))

let prop_spreading_prefix_proportional =
  (* WF2Q spreading: in any prefix of length k, flow i holds at most
     ceil(k * w_i / W) + 1 slots. *)
  QCheck.Test.make ~name:"spreading prefixes near-proportional" ~count:200
    QCheck.(list_of_size Gen.(2 -- 5) (1 -- 5))
    (fun ws ->
      let weights = Array.of_list ws in
      let frame = Core.Spreading.frame ~weights in
      let total = Array.length frame in
      let n = Array.length weights in
      let counts = Array.make n 0 in
      let ok = ref true in
      Array.iteri
        (fun k flow ->
          counts.(flow) <- counts.(flow) + 1;
          let wsum = Array.fold_left ( + ) 0 weights in
          let expected =
            float_of_int ((k + 1) * weights.(flow)) /. float_of_int wsum
          in
          if float_of_int counts.(flow) > ceil expected +. 1. then ok := false)
        frame;
      ignore total;
      !ok)

(* --- Credit --- *)

let test_credit_earn_and_cap () =
  let c = Core.Credit.create ~credit_limit:4 ~debit_limit:4 ~weight:1 () in
  check_int "weight 1 frame" 1 (Core.Credit.begin_frame c);
  Core.Credit.end_frame c ~attempts:0;
  check_int "earned 1" 1 (Core.Credit.balance c);
  check_int "boosted frame" 2 (Core.Credit.begin_frame c);
  Core.Credit.end_frame c ~attempts:0;
  check_int "earned 2 (capped path)" 2 (Core.Credit.balance c);
  (* Keep missing: saturates at the cap. *)
  for _ = 1 to 10 do
    ignore (Core.Credit.begin_frame c);
    Core.Credit.end_frame c ~attempts:0
  done;
  check_int "capped at 4" 4 (Core.Credit.balance c)

let test_credit_debit () =
  let c = Core.Credit.create ~credit_limit:4 ~debit_limit:2 ~weight:1 () in
  ignore (Core.Credit.begin_frame c);
  (* transmitted 5 beyond grant of 1 -> debt capped at 2 *)
  Core.Credit.end_frame c ~attempts:6;
  check_int "debt capped" (-2) (Core.Credit.balance c);
  check_int "weight reduced" (-1) (Core.Credit.begin_frame c);
  (* with nothing transmitted, the debt shrinks by the weight *)
  Core.Credit.end_frame c ~attempts:0;
  check_int "debt decays" (-1) (Core.Credit.balance c)

let test_credit_redeem_then_spend () =
  let c = Core.Credit.create ~credit_limit:4 ~debit_limit:4 ~weight:1 () in
  ignore (Core.Credit.begin_frame c);
  Core.Credit.end_frame c ~attempts:0;
  (* balance 1; redeem and use both slots: back to zero. *)
  check_int "effective 2" 2 (Core.Credit.begin_frame c);
  Core.Credit.end_frame c ~attempts:2;
  check_int "spent" 0 (Core.Credit.balance c)

let test_credit_per_frame_cap () =
  let c =
    Core.Credit.create ~credit_limit:4 ~debit_limit:4 ~credit_per_frame:2
      ~weight:1 ()
  in
  for _ = 1 to 4 do
    ignore (Core.Credit.begin_frame c);
    Core.Credit.end_frame c ~attempts:0
  done;
  check_int "banked 4" 4 (Core.Credit.balance c);
  check_int "redeems only 2" 3 (Core.Credit.begin_frame c);
  Core.Credit.end_frame c ~attempts:3;
  check_int "carry preserved" 2 (Core.Credit.balance c)

(* --- IWFQ --- *)

let mk_flows ?(drop = Core.Params.No_drop) weights =
  Array.mapi (fun id w -> Core.Params.flow ~id ~weight:w ~drop ()) weights

let pkt ~flow ~seq ~arrival = Packet.make ~flow ~seq ~arrival ()

let test_iwfq_error_free_is_wfq_order () =
  (* With all channels good, IWFQ serves in finish-tag (WFQ) order. *)
  let iwfq = Core.Iwfq.create (mk_flows [| 1.; 3. |]) in
  let sched = Core.Iwfq.instance iwfq in
  for seq = 0 to 3 do
    sched.enqueue ~slot:0 (pkt ~flow:0 ~seq ~arrival:0);
    sched.enqueue ~slot:0 (pkt ~flow:1 ~seq ~arrival:0)
  done;
  let order = ref [] in
  for slot = 0 to 3 do
    match sched.select ~slot ~predicted_good:(fun _ -> true) with
    | Some f ->
        order := f :: !order;
        sched.complete ~flow:f;
        sched.on_slot_end ~slot
    | None -> Alcotest.fail "unexpected idle"
  done;
  (* finish tags: f0: 1,2,..; f1: 1/3,2/3,1,4/3 -> f1,f1,f1?,... v grows. *)
  check_int "weighted dominance" 3
    (List.length (List.filter (fun f -> f = 1) !order))

let test_iwfq_blocked_flow_keeps_tag_precedence () =
  (* A flow blocked by errors regains the channel as soon as it is good,
     because its service tag did not advance. *)
  let iwfq = Core.Iwfq.create (mk_flows [| 1.; 1. |]) in
  let sched = Core.Iwfq.instance iwfq in
  sched.enqueue ~slot:0 (pkt ~flow:0 ~seq:0 ~arrival:0);
  for seq = 0 to 5 do
    sched.enqueue ~slot:0 (pkt ~flow:1 ~seq ~arrival:0)
  done;
  (* flow0 in error for 3 slots: flow1 gets served. *)
  for slot = 0 to 2 do
    let sel = sched.select ~slot ~predicted_good:(fun f -> f = 1) in
    check_int "flow1 substitutes" 1 (Option.get sel);
    sched.complete ~flow:1;
    sched.on_slot_end ~slot
  done;
  (* flow0 channel recovers: lowest tag wins immediately. *)
  let sel = sched.select ~slot:3 ~predicted_good:(fun _ -> true) in
  check_int "lagging flow preempts" 0 (Option.get sel)

let test_iwfq_lead_bound_limits_punishment () =
  (* A flow that got extra service is ahead; the lead clamp bounds how long
     it is locked out.  With l=1 and weight 1, its head tag is pulled to
     v+1. *)
  let params =
    { (Core.Params.iwfq_defaults ~n_flows:2) with lead = [| 1.; 1. |] }
  in
  let iwfq = Core.Iwfq.create ~params (mk_flows [| 1.; 1. |]) in
  let sched = Core.Iwfq.instance iwfq in
  (* Both flows backlogged, but flow1's channel is in error: flow0
     transmits 6 packets and runs ahead of its fluid share. *)
  for seq = 0 to 9 do
    sched.enqueue ~slot:0 (pkt ~flow:0 ~seq ~arrival:0);
    sched.enqueue ~slot:0 (pkt ~flow:1 ~seq ~arrival:0)
  done;
  for slot = 0 to 5 do
    ignore (sched.select ~slot ~predicted_good:(fun f -> f = 0));
    sched.complete ~flow:0;
    sched.on_slot_end ~slot
  done;
  check_bool "flow0 is leading" true (Core.Iwfq.lag iwfq ~flow:0 < 0.);
  (* service tag of flow0 is clamped to v + l/r + 1/r, not its raw tag 7 *)
  let v = Core.Iwfq.virtual_time iwfq in
  ignore (sched.select ~slot:6 ~predicted_good:(fun _ -> true));
  let tag = Core.Iwfq.service_tag iwfq ~flow:0 in
  check_bool "clamped service tag" true (tag <= v +. 1. +. 1. +. 1e-9)

let test_iwfq_lag_bound_drops_slots () =
  (* Per-flow lag cap B_i: a long error burst cannot bank unbounded
     precedence. *)
  let params =
    { Core.Params.lag_total = 2.; lead = [| 4.; 4. |]; wf2q_selection = false }
  in
  let iwfq = Core.Iwfq.create ~params (mk_flows [| 1.; 1. |]) in
  let sched = Core.Iwfq.instance iwfq in
  for seq = 0 to 9 do
    sched.enqueue ~slot:0 (pkt ~flow:0 ~seq ~arrival:0);
    sched.enqueue ~slot:0 (pkt ~flow:1 ~seq ~arrival:0)
  done;
  (* flow0 errored for 10 slots; flow1 drains. *)
  for slot = 0 to 9 do
    ignore (sched.select ~slot ~predicted_good:(fun f -> f = 1));
    if sched.queue_length 1 > 0 then sched.complete ~flow:1;
    sched.on_slot_end ~slot
  done;
  (* B_0 = B*r/(sum r) = 1 packet: slot queue trimmed to its cap plus
     non-lagging slots; queue of packets mirrors it. *)
  check_bool "slots were trimmed" true
    (Core.Iwfq.slot_queue_length iwfq ~flow:0 < 10);
  check_int "packet queue mirrors slot queue" (Core.Iwfq.slot_queue_length iwfq ~flow:0)
    (sched.queue_length 0)

let test_iwfq_drop_head_keeps_earliest_slot () =
  let iwfq = Core.Iwfq.create (mk_flows [| 1. |]) in
  let sched = Core.Iwfq.instance iwfq in
  sched.enqueue ~slot:0 (pkt ~flow:0 ~seq:0 ~arrival:0);
  sched.enqueue ~slot:0 (pkt ~flow:0 ~seq:1 ~arrival:0);
  let tag_before = Core.Iwfq.service_tag iwfq ~flow:0 in
  sched.drop_head ~flow:0;
  check_float "service tag unchanged by drop" tag_before
    (Core.Iwfq.service_tag iwfq ~flow:0);
  check_int "one packet left" 1 (sched.queue_length 0);
  check_int "one slot left" 1 (Core.Iwfq.slot_queue_length iwfq ~flow:0)

let test_iwfq_drop_expired () =
  let iwfq = Core.Iwfq.create (mk_flows [| 1. |]) in
  let sched = Core.Iwfq.instance iwfq in
  sched.enqueue ~slot:0 (pkt ~flow:0 ~seq:0 ~arrival:0);
  sched.enqueue ~slot:0 (pkt ~flow:0 ~seq:1 ~arrival:0);
  let dropped = sched.drop_expired ~flow:0 ~now:10 ~bound:5 in
  check_int "both expired" 2 (List.length dropped);
  check_int "queue empty" 0 (sched.queue_length 0);
  check_bool "service tag infinite" true
    (Core.Iwfq.service_tag iwfq ~flow:0 = infinity)

let test_iwfq_idle_when_all_bad () =
  let iwfq = Core.Iwfq.create (mk_flows [| 1.; 1. |]) in
  let sched = Core.Iwfq.instance iwfq in
  sched.enqueue ~slot:0 (pkt ~flow:0 ~seq:0 ~arrival:0);
  check_bool "idles under universal error" true
    (Option.is_none (sched.select ~slot:0 ~predicted_good:(fun _ -> false)))

let test_iwfq_wf2q_selection_mode () =
  (* With WF2Q selection, a flow whose fluid service has not started yet
     defers to one whose service has. *)
  let params =
    { (Core.Params.iwfq_defaults ~n_flows:2) with wf2q_selection = true }
  in
  let iwfq = Core.Iwfq.create ~params (mk_flows [| 3.; 1. |]) in
  let sched = Core.Iwfq.instance iwfq in
  for seq = 0 to 2 do
    sched.enqueue ~slot:0 (pkt ~flow:0 ~seq ~arrival:0)
  done;
  sched.enqueue ~slot:0 (pkt ~flow:1 ~seq:0 ~arrival:0);
  let first = Option.get (sched.select ~slot:0 ~predicted_good:(fun _ -> true)) in
  check_int "eligible lowest finish first" 0 first

let suite =
  [
    ("fluid equal split", `Quick, test_fluid_equal_split);
    ("fluid weighted split", `Quick, test_fluid_weighted_split);
    ("fluid mid-slot drain", `Quick, test_fluid_drain_midslot);
    ("fluid virtual time", `Quick, test_fluid_virtual_time);
    ("fluid idle v constant", `Quick, test_fluid_idle_constant_v);
    ("fluid work conservation", `Quick, test_fluid_conservation);
    QCheck_alcotest.to_alcotest prop_fluid_fairness;
    QCheck_alcotest.to_alcotest prop_fluid_matches_continuous_gps;
    ("slot queue tags", `Quick, test_slot_queue_tags);
    ("slot queue tags after idle", `Quick, test_slot_queue_tags_after_idle);
    ("slot queue pop_back", `Quick, test_slot_queue_pop_back);
    ("slot queue lagging count", `Quick, test_slot_queue_lagging_count);
    ("slot queue trim lagging", `Quick, test_slot_queue_trim_lagging);
    ("slot queue trim noop", `Quick, test_slot_queue_trim_noop);
    ("slot queue clamp lead", `Quick, test_slot_queue_clamp_lead);
    ("slot queue clamp chains", `Quick, test_slot_queue_clamp_updates_chain);
    ("spreading counts", `Quick, test_spreading_counts);
    ("spreading interleaves", `Quick, test_spreading_interleaves);
    ("spreading wf2q order", `Quick, test_spreading_wf2q_order);
    ("spreading zero/negative", `Quick, test_spreading_zero_and_negative);
    QCheck_alcotest.to_alcotest prop_spreading_is_permutation;
    QCheck_alcotest.to_alcotest prop_spreading_prefix_proportional;
    ("credit earn and cap", `Quick, test_credit_earn_and_cap);
    ("credit debit", `Quick, test_credit_debit);
    ("credit redeem then spend", `Quick, test_credit_redeem_then_spend);
    ("credit per-frame cap", `Quick, test_credit_per_frame_cap);
    ("iwfq error-free = WFQ order", `Quick, test_iwfq_error_free_is_wfq_order);
    ("iwfq blocked flow precedence", `Quick, test_iwfq_blocked_flow_keeps_tag_precedence);
    ("iwfq lead bound", `Quick, test_iwfq_lead_bound_limits_punishment);
    ("iwfq lag bound", `Quick, test_iwfq_lag_bound_drops_slots);
    ("iwfq drop keeps earliest slot", `Quick, test_iwfq_drop_head_keeps_earliest_slot);
    ("iwfq drop expired", `Quick, test_iwfq_drop_expired);
    ("iwfq idles when all bad", `Quick, test_iwfq_idle_when_all_bad);
    ("iwfq wf2q selection", `Quick, test_iwfq_wf2q_selection_mode);
  ]
