(* MAC-level cell simulator: runs a scenario file through the Section-6
   medium access protocol (uplink invisibility, control-slot notification
   contention, piggybacked queue reports).

   Examples:
     wfs_mac examples/uplink.scenario
     wfs_mac --aloha 0.5 examples/uplink.scenario *)

module Mac = Wfs_mac
module Core = Wfs_core

let run ~path ~contention ~control_weight =
  let scenario = Core.Scenario.load path in
  let flows =
    Array.mapi
      (fun i setup ->
        let host, direction = scenario.Core.Scenario.addrs.(i) in
        {
          Mac.Mac_sim.addr =
            {
              Mac.Frame.host;
              direction =
                (match direction with
                | Core.Scenario.Up -> Mac.Frame.Uplink
                | Core.Scenario.Down -> Mac.Frame.Downlink);
              index = i;
            };
          weight = setup.Core.Simulator.flow.Core.Params.weight;
          source = setup.Core.Simulator.source;
          channel = setup.Core.Simulator.channel;
          drop = setup.Core.Simulator.flow.Core.Params.drop;
        })
      scenario.Core.Scenario.setups
  in
  let cfg =
    Mac.Mac_sim.config
      ~rng:(Wfs_util.Rng.create scenario.Core.Scenario.seed)
      ~control_weight ~contention
      ~horizon:scenario.Core.Scenario.horizon flows
  in
  let r = Mac.Mac_sim.run cfg in
  let m = r.Mac.Mac_sim.metrics in
  let table =
    Wfs_util.Tablefmt.create
      ~title:
        (Printf.sprintf "%s through the MAC (horizon=%d)" path
           scenario.Core.Scenario.horizon)
      ~columns:
        [ "flow"; "addr"; "arrivals"; "delivered"; "mean delay"; "loss" ]
  in
  Array.iteri
    (fun i (fl : Mac.Mac_sim.flow_spec) ->
      Wfs_util.Tablefmt.add_row table
        [
          string_of_int i;
          Format.asprintf "%a" Mac.Frame.pp_addr fl.Mac.Mac_sim.addr;
          string_of_int (Core.Metrics.arrivals m ~flow:i);
          string_of_int (Core.Metrics.delivered m ~flow:i);
          Wfs_util.Tablefmt.cell_of_float (Core.Metrics.mean_delay m ~flow:i);
          Wfs_util.Tablefmt.cell_of_float ~decimals:4 (Core.Metrics.loss m ~flow:i);
        ])
    flows;
  Wfs_util.Tablefmt.print table;
  Printf.printf
    "\ncontrol slots %d | data slots %d | idle %d | notifications %d (collisions %d) | piggyback reveals %d | mean reveal delay %.2f\n"
    r.Mac.Mac_sim.control_slots r.Mac.Mac_sim.data_slots r.Mac.Mac_sim.idle_slots
    r.Mac.Mac_sim.notifications_won r.Mac.Mac_sim.notification_collisions
    r.Mac.Mac_sim.piggyback_reveals r.Mac.Mac_sim.mean_reveal_delay

open Cmdliner

let scenario_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"SCENARIO" ~doc:"Scenario file (see lib/core/scenario.mli).")

let aloha_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "aloha" ]
        ~doc:"Use p-persistent ALOHA notification contention with this persistence.")

let control_weight_arg =
  Arg.(
    value & opt float 1.
    & info [ "control-weight" ] ~doc:"Scheduling weight of the control flow.")

let main path aloha control_weight =
  let contention =
    match aloha with
    | None -> Mac.Mac_sim.Single_shot
    | Some p -> Mac.Mac_sim.Aloha p
  in
  run ~path ~contention ~control_weight

let cmd =
  let doc = "Wireless cell simulator with the Section-6 MAC protocol" in
  Cmd.v (Cmd.info "wfs_mac" ~doc)
    Term.(const main $ scenario_arg $ aloha_arg $ control_weight_arg)

let () = exit (Cmd.eval cmd)
