(* Command-line driver: run any paper example with any scheduler variant.

   Examples:
     wfs_sim -e 1 -a all                    # Table-1-style grid
     wfs_sim -e 4 -a swapa -k predicted     # one variant of Example 4
     wfs_sim -e 1 -b 1.0 --csv              # memoryless channel, CSV output
     wfs_sim -e 6 --credit 2 --debit 0      # Example 6 with tighter caps *)

let default_horizon = 200_000

type output = Table | Csv

(* Run a scenario file against the requested algorithm variants. *)
let run_scenario_file ~path ~credit ~debit ~output ~algorithms =
  let scenario = Wfs_core.Scenario.load path in
  let columns =
    [ "algorithm"; "flow"; "mean_delay"; "loss"; "max_delay"; "stddev"; "thpt" ]
  in
  let table =
    Wfs_util.Tablefmt.create
      ~title:
        (Printf.sprintf "%s (seed=%d, horizon=%d slots)" path
           scenario.Wfs_core.Scenario.seed scenario.Wfs_core.Scenario.horizon)
      ~columns
  in
  let csv_rows = ref [] in
  let emit cells =
    match output with
    | Table -> Wfs_util.Tablefmt.add_row table cells
    | Csv -> csv_rows := String.concat "," cells :: !csv_rows
  in
  List.iter
    (fun (alg, info) ->
      (* Rebuild the scenario per run: sources/channels are stateful. *)
      let scenario = Wfs_core.Scenario.load path in
      let m =
        Wfs_core.Scenario.run
          ~scheduler:(fun flows ->
            Wfs_core.Presets.scheduler ~credit_limit:credit ~debit_limit:debit
              alg flows)
          {
            scenario with
            Wfs_core.Scenario.predictor = Wfs_core.Presets.predictor alg info;
          }
      in
      Array.iteri
        (fun i _ ->
          emit
            [
              Wfs_core.Presets.algorithm_name alg info;
              string_of_int i;
              Wfs_util.Tablefmt.cell_of_float (Wfs_core.Metrics.mean_delay m ~flow:i);
              Wfs_util.Tablefmt.cell_of_float ~decimals:4
                (Wfs_core.Metrics.loss m ~flow:i);
              Wfs_util.Tablefmt.cell_of_float (Wfs_core.Metrics.max_delay m ~flow:i);
              Wfs_util.Tablefmt.cell_of_float
                (Wfs_core.Metrics.stddev_delay m ~flow:i);
              Wfs_util.Tablefmt.cell_of_float ~decimals:4
                (Wfs_core.Metrics.throughput m ~flow:i
                   ~slots:scenario.Wfs_core.Scenario.horizon);
            ])
        scenario.Wfs_core.Scenario.setups)
    algorithms;
  match output with
  | Table -> Wfs_util.Tablefmt.print table
  | Csv ->
      print_endline (String.concat "," columns);
      List.iter print_endline (List.rev !csv_rows)

let run_example ~example ~seed ~horizon ~sum ~credit ~debit ~output ~fairness
    ~algorithms =
  let setups () =
    match example with
    | 1 -> Wfs_core.Presets.example1 ~sum ~seed ()
    | 2 -> Wfs_core.Presets.example2 ~sum ~seed ()
    | 3 -> Wfs_core.Presets.example3 ~seed ()
    | 4 -> Wfs_core.Presets.example4 ~seed ()
    | 5 -> Wfs_core.Presets.example5 ~seed ()
    | 6 -> Wfs_core.Presets.example6 ~seed ()
    | n -> invalid_arg (Printf.sprintf "unknown example %d (use 1-6)" n)
  in
  let columns =
    [ "algorithm"; "flow"; "mean_delay"; "loss"; "max_delay"; "stddev"; "thpt" ]
    @ if fairness then [ "jain"; "worst_gap" ] else []
  in
  let table =
    Wfs_util.Tablefmt.create
      ~title:
        (Printf.sprintf "Example %d (seed=%d, horizon=%d slots)" example seed
           horizon)
      ~columns
  in
  let csv_rows = ref [] in
  let emit cells =
    match output with
    | Table -> Wfs_util.Tablefmt.add_row table cells
    | Csv -> csv_rows := String.concat "," cells :: !csv_rows
  in
  List.iter
    (fun (alg, info) ->
      let setups = setups () in
      let flows = Wfs_core.Presets.flows_of setups in
      let sched =
        Wfs_core.Presets.scheduler ~credit_limit:credit ~debit_limit:debit alg
          flows
      in
      let monitor =
        if fairness then
          Some
            (Wfs_core.Fairness.Monitor.create
               ~weights:(Array.map (fun (f : Wfs_core.Params.flow) -> f.weight) flows)
               ~window:100 ~sched)
        else None
      in
      let cfg =
        Wfs_core.Simulator.config
          ~predictor:(Wfs_core.Presets.predictor alg info)
          ?observer:(Option.map Wfs_core.Fairness.Monitor.observer monitor)
          ~horizon setups
      in
      let m = Wfs_core.Simulator.run cfg sched in
      Array.iteri
        (fun i _ ->
          let base =
            [
              Wfs_core.Presets.algorithm_name alg info;
              string_of_int (i + 1);
              Wfs_util.Tablefmt.cell_of_float (Wfs_core.Metrics.mean_delay m ~flow:i);
              Wfs_util.Tablefmt.cell_of_float ~decimals:4
                (Wfs_core.Metrics.loss m ~flow:i);
              Wfs_util.Tablefmt.cell_of_float (Wfs_core.Metrics.max_delay m ~flow:i);
              Wfs_util.Tablefmt.cell_of_float
                (Wfs_core.Metrics.stddev_delay m ~flow:i);
              Wfs_util.Tablefmt.cell_of_float ~decimals:4
                (Wfs_core.Metrics.throughput m ~flow:i ~slots:horizon);
            ]
          in
          let extra =
            match monitor with
            | None -> []
            | Some mon ->
                [
                  Wfs_util.Tablefmt.cell_of_float ~decimals:4
                    (Wfs_core.Fairness.Monitor.mean_jain mon);
                  Wfs_util.Tablefmt.cell_of_float
                    (Wfs_core.Fairness.Monitor.worst_gap mon);
                ]
          in
          emit (base @ extra))
        flows)
    algorithms;
  match output with
  | Table -> Wfs_util.Tablefmt.print table
  | Csv ->
      print_endline (String.concat "," columns);
      List.iter print_endline (List.rev !csv_rows)

open Cmdliner

let example_arg =
  Arg.(value & opt int 1 & info [ "e"; "example" ] ~doc:"Paper example (1-6).")

let seed_arg = Arg.(value & opt int 42 & info [ "s"; "seed" ] ~doc:"PRNG seed.")

let horizon_arg =
  Arg.(
    value
    & opt int default_horizon
    & info [ "n"; "horizon" ] ~doc:"Slots to simulate.")

let sum_arg =
  Arg.(
    value & opt float 0.1
    & info [ "b"; "burstiness" ]
        ~doc:"pg+pe for examples 1-2 (0.1 bursty ... 1.0 memoryless).")

let credit_arg =
  Arg.(value & opt int 4 & info [ "credit" ] ~doc:"Credit cap (WPS variants).")

let debit_arg =
  Arg.(value & opt int 4 & info [ "debit" ] ~doc:"Debit cap (SwapA).")

let csv_arg =
  Arg.(value & flag & info [ "csv" ] ~doc:"Emit CSV instead of a table.")

let fairness_arg =
  Arg.(
    value & flag
    & info [ "fairness" ]
        ~doc:"Also report windowed Jain index and worst normalised-service gap.")

let algo_arg =
  let all =
    [ "all"; "blind"; "wrr"; "noswap"; "swapw"; "swapa"; "iwfq"; "cifq"; "csdps" ]
  in
  Arg.(
    value & opt string "all"
    & info [ "a"; "algorithm" ]
        ~doc:(Printf.sprintf "Algorithm: %s." (String.concat ", " all)))

let info_arg =
  Arg.(
    value & opt string "both"
    & info [ "k"; "knowledge" ] ~doc:"Channel knowledge: ideal, predicted, both.")

let scenario_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "scenario" ]
        ~doc:"Run a scenario file instead of a paper example (see lib/core/scenario.mli for the format).")

let parse_algorithms algo info =
  let open Wfs_core.Presets in
  let infos =
    match info with
    | "ideal" -> [ Ideal ]
    | "predicted" -> [ Predicted ]
    | "both" -> [ Ideal; Predicted ]
    | s -> invalid_arg ("unknown knowledge: " ^ s)
  in
  let with_infos a = List.map (fun i -> (a, i)) infos in
  match algo with
  | "all" -> table1_algorithms @ with_infos Iwfq_alg
  | "blind" -> [ (Blind_wrr, Predicted) ]
  | "wrr" -> with_infos Wrr
  | "noswap" -> with_infos Noswap
  | "swapw" -> with_infos Swapw
  | "swapa" -> with_infos Swapa
  | "iwfq" -> with_infos Iwfq_alg
  | "cifq" -> with_infos Cifq_alg
  | "csdps" -> [ (Csdps_alg, Predicted) ]
  | s -> invalid_arg ("unknown algorithm: " ^ s)

let main example seed horizon sum credit debit csv fairness algo info scenario =
  let output = if csv then Csv else Table in
  let algorithms = parse_algorithms algo info in
  match scenario with
  | Some path -> run_scenario_file ~path ~credit ~debit ~output ~algorithms
  | None ->
      run_example ~example ~seed ~horizon ~sum ~credit ~debit ~output ~fairness
        ~algorithms

let cmd =
  let doc = "Wireless fair scheduling simulator (Lu/Bharghavan/Srikant 1997)" in
  Cmd.v
    (Cmd.info "wfs_sim" ~doc)
    Term.(
      const main $ example_arg $ seed_arg $ horizon_arg $ sum_arg $ credit_arg
      $ debit_arg $ csv_arg $ fairness_arg $ algo_arg $ info_arg $ scenario_arg)

let () = exit (Cmd.eval cmd)
