# Convenience targets; `make check` is the tier-1 gate CI runs.

.PHONY: all build lint analyze sarif test check bench perf golden-check obs-demo clean

all: build

build:
	dune build

lint:
	dune build @lint

# Typedtree cross-module analysis (determinism taint, domain-safety,
# coverage audits, suppression hygiene) plus its fixture self-test; see
# docs/ANALYSIS.md.
analyze:
	dune build @analyze

# Same analysis, but also emit a SARIF 2.1.0 log for code-scanning UIs.
sarif:
	dune build
	cd _build/default && ./tools/analyze/wfs_analyze.exe --runs 2 \
	  --lib lib --test test --sarif ../../wfs_analyze.sarif; \
	  status=$$?; [ $$status -eq 0 ] || [ $$status -eq 1 ] || exit $$status
	@echo "wrote wfs_analyze.sarif"

test:
	dune runtest

check:
	dune build @lint
	dune build
	dune runtest

bench:
	dune exec bench/main.exe -- --quick

# End-to-end macro-benchmark only (slots/s per registry scheduler); see
# docs/PERF.md for baselines and methodology.
perf:
	dune exec bench/main.exe -- --macro-only --seed 42

# Regenerate the golden CSVs in a scratch dir and require byte-identity
# with the committed ones (the perf work must never change output).
golden-check:
	@tmp=$$(mktemp -d); \
	for e in 1 2 3 4 5 6; do \
	  dune exec bin/wfs_sim.exe -- -e $$e -a all -n 20000 -s 42 --csv \
	    > "$$tmp/example$$e.csv" || exit 1; \
	  cmp "$$tmp/example$$e.csv" "test/golden/example$$e.csv" || exit 1; \
	done; \
	rm -rf "$$tmp"; \
	cd test/golden && sha256sum -c SHA256SUMS

# Observability demo: a short Example-1 run streaming a wfs-trace/1
# time series (JSONL + CSV) and an instrument artifact into obs-demo/,
# with a phase-timing profile on stderr, then validate both outputs
# (see docs/OBSERVABILITY.md).
obs-demo:
	@mkdir -p obs-demo
	dune exec bin/wfs_sim.exe -- -e 1 -a SwapA-P -n 5000 -s 42 \
	  --trace-out obs-demo/example1.jsonl --trace-csv obs-demo/example1.csv \
	  --trace-stride 10 --metrics-out obs-demo/example1-metrics.json --profile
	dune exec bin/wfs_sim.exe -- --check-trace obs-demo/example1.jsonl
	dune exec bin/wfs_sim.exe -- --check-metrics obs-demo/example1-metrics.json
	@echo "obs-demo/: $$(ls obs-demo)"

clean:
	dune clean
