# Convenience targets; `make check` is the tier-1 gate CI runs.

.PHONY: all build lint test check bench perf golden-check clean

all: build

build:
	dune build

lint:
	dune build @lint

test:
	dune runtest

check:
	dune build @lint
	dune build
	dune runtest

bench:
	dune exec bench/main.exe -- --quick

# End-to-end macro-benchmark only (slots/s per registry scheduler); see
# docs/PERF.md for baselines and methodology.
perf:
	dune exec bench/main.exe -- --macro-only --seed 42

# Regenerate the golden CSVs in a scratch dir and require byte-identity
# with the committed ones (the perf work must never change output).
golden-check:
	@tmp=$$(mktemp -d); \
	for e in 1 2 3 4 5 6; do \
	  dune exec bin/wfs_sim.exe -- -e $$e -a all -n 20000 -s 42 --csv \
	    > "$$tmp/example$$e.csv" || exit 1; \
	  cmp "$$tmp/example$$e.csv" "test/golden/example$$e.csv" || exit 1; \
	done; \
	rm -rf "$$tmp"; \
	cd test/golden && sha256sum -c SHA256SUMS

clean:
	dune clean
