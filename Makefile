# Convenience targets; `make check` is the tier-1 gate CI runs.

.PHONY: all build lint test check bench clean

all: build

build:
	dune build

lint:
	dune build @lint

test:
	dune runtest

check:
	dune build @lint
	dune build
	dune runtest

bench:
	dune exec bench/main.exe -- --quick

clean:
	dune clean
